// Statistics used by the SNR metric (Eq. 1), the robust detector, and the
// envelope classifier.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/units.hpp"
#include "dsp/stats.hpp"

namespace psa::dsp {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_DOUBLE_EQ(variance(x), 1.25);
  EXPECT_DOUBLE_EQ(stddev(x), std::sqrt(1.25));
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(rms(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
}

TEST(Stats, RmsOfSine) {
  std::vector<double> x(10000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 2.0 * std::sin(kTwoPi * static_cast<double>(i) / 100.0);
  }
  EXPECT_NEAR(rms(x), 2.0 / std::sqrt(2.0), 1e-3);
}

TEST(Stats, SnrDbEquationOne) {
  // Eq. (1): SNR = 20 log10(Vrms_signal / Vrms_noise).
  const std::vector<double> sig(100, 10.0);
  const std::vector<double> noi(100, 0.1);
  EXPECT_NEAR(snr_db(sig, noi), 40.0, 1e-9);
}

TEST(Stats, SnrZeroNoiseSaturates) {
  const std::vector<double> sig(10, 1.0);
  const std::vector<double> noi(10, 0.0);
  EXPECT_GE(snr_db(sig, noi), 300.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MadRobustToOutlier) {
  const std::vector<double> x = {1.0, 1.1, 0.9, 1.05, 0.95, 100.0};
  EXPECT_LT(median_abs_deviation(x), 0.2);
}

TEST(Stats, Argmax) {
  const std::vector<double> x = {1.0, 5.0, 3.0};
  EXPECT_EQ(argmax(x), 1u);
  EXPECT_EQ(argmax(std::vector<double>{}), 0u);
}

TEST(Autocorrelation, UnityAtLagZero) {
  const std::vector<double> x = {1.0, -2.0, 0.5, 3.0, -1.0};
  const auto r = autocorrelation(x, 3);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(kTwoPi * static_cast<double>(i) / 50.0);
  }
  const auto r = autocorrelation(x, 200);
  EXPECT_GT(r[50], 0.9);
  EXPECT_LT(r[25], 0.1);  // anti-phase
}

TEST(DominantPeriod, FindsSinePeriod) {
  std::vector<double> x(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(kTwoPi * static_cast<double>(i) / 73.0);
  }
  const std::size_t lag = dominant_period(x, 5, 500);
  EXPECT_NEAR(static_cast<double>(lag), 73.0, 2.0);
}

TEST(DominantPeriod, WhiteNoiseHasNone) {
  // Deterministic pseudo-noise via an LCG to avoid test flake.
  std::vector<double> x(2000);
  std::uint64_t s = 12345;
  for (double& v : x) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<double>(s >> 40) / static_cast<double>(1 << 24) - 0.5;
  }
  EXPECT_EQ(dominant_period(x, 5, 500, 0.5), 0u);
}

TEST(SpectralFlatness, WhiteVsTonal) {
  const std::vector<double> flat(64, 1.0);
  EXPECT_NEAR(spectral_flatness(flat), 1.0, 1e-9);
  std::vector<double> tonal(64, 1e-12);
  tonal[10] = 1.0;
  EXPECT_LT(spectral_flatness(tonal), 0.05);
}

TEST(CrestFactor, SineVsConstant) {
  std::vector<double> sine(1000);
  for (std::size_t i = 0; i < sine.size(); ++i) {
    sine[i] = std::sin(kTwoPi * static_cast<double>(i) / 100.0);
  }
  EXPECT_NEAR(crest_factor(sine), std::sqrt(2.0), 0.01);
  const std::vector<double> dc(100, 2.0);
  EXPECT_NEAR(crest_factor(dc), 1.0, 1e-12);
}

TEST(HighFraction, SquareWaveDuty) {
  std::vector<double> sq(100, 0.0);
  for (std::size_t i = 0; i < 30; ++i) sq[i] = 1.0;
  EXPECT_NEAR(high_fraction(sq), 0.3, 1e-12);
}

TEST(HighFraction, ConstantIsOne) {
  const std::vector<double> c(10, 5.0);
  EXPECT_DOUBLE_EQ(high_fraction(c), 1.0);
}

}  // namespace
}  // namespace psa::dsp
