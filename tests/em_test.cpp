// EM physics: dipole kernel, flux maps (including the self-cancellation the
// PSA exists to avoid), noise model, induced voltage.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "em/calibration.hpp"
#include "em/dipole.hpp"
#include "em/fluxmap.hpp"
#include "em/induced.hpp"
#include "em/noise.hpp"

namespace psa::em {
namespace {

TEST(Dipole, PositiveUnderneath) {
  EXPECT_GT(dipole_bz(0.0, 40.0), 0.0);
  EXPECT_GT(dipole_bz(20.0, 40.0), 0.0);
}

TEST(Dipole, SignFlipsAtSqrt2H) {
  const double h = 40.0;
  const double flip = std::sqrt(2.0) * h;
  EXPECT_GT(dipole_bz(flip - 1.0, h), 0.0);
  EXPECT_LT(dipole_bz(flip + 1.0, h), 0.0);
  // At the exact boundary the kernel is zero up to floating-point residue;
  // compare against a nearby field value rather than an absolute epsilon.
  EXPECT_LT(std::fabs(dipole_bz(flip, h)),
            1e-6 * std::fabs(dipole_bz(h, h)));
}

TEST(Dipole, DecaysWithDistance) {
  const double h = 40.0;
  EXPECT_GT(std::fabs(dipole_bz(100.0, h)), std::fabs(dipole_bz(200.0, h)));
  EXPECT_GT(std::fabs(dipole_bz(200.0, h)), std::fabs(dipole_bz(400.0, h)));
}

TEST(Dipole, FieldWeakerWhenFarther) {
  EXPECT_GT(dipole_bz(0.0, 40.0), dipole_bz(0.0, 500.0));
}

TEST(DiskFlux, PeaksAtOptimalRadius) {
  const double h = 40.0;
  const double r_opt = optimal_disk_radius_um(h);
  EXPECT_NEAR(r_opt, std::sqrt(2.0) * h, 1e-12);
  const double at_opt = disk_flux(r_opt, h);
  EXPECT_GT(at_opt, disk_flux(r_opt * 0.5, h));
  EXPECT_GT(at_opt, disk_flux(r_opt * 2.0, h));
}

TEST(DiskFlux, VanishesAtExtremes) {
  EXPECT_DOUBLE_EQ(disk_flux(0.0, 40.0), 0.0);
  EXPECT_LT(disk_flux(1.0e6, 40.0), disk_flux(57.0, 40.0) * 1e-3);
}

TEST(DiskFlux, WholePlaneNetFluxIsZeroInTheLimit) {
  // Φ(R) → 0 as R → ∞: a coil covering "everything" captures nothing.
  // This is the physics behind the single-coil baseline's weakness.
  const double h = 40.0;
  double prev = disk_flux(100.0, h);
  for (double r = 200.0; r <= 3200.0; r *= 2.0) {
    const double cur = disk_flux(r, h);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

Polyline square_coil(Point lo, double side) {
  return {lo, {lo.x + side, lo.y}, {lo.x + side, lo.y + side},
          {lo.x, lo.y + side}};
}

TEST(FluxMap, MatchesAnalyticDiskForCentredSource) {
  // A square coil and a dipole at its centre: numeric flux should be close
  // to the analytic disk value for the equal-area radius.
  const Rect die{{0, 0}, {576, 576}};
  const double side = 160.0;
  const Polyline coil = square_coil({208.0, 208.0}, side);
  FluxMap::Params params;
  params.dipole_height_um = 40.0;
  params.screening_um = 0.0;  // compare against the unscreened analytic form
  params.winding_raster = 128;
  params.source_nx = 36;
  params.source_ny = 36;
  const FluxMap fm = FluxMap::compute(coil, die, params);
  // Source cell nearest the coil centre (288, 288): cell (18,18) is centred
  // at 296 µm — close enough at this resolution.
  const std::size_t ix = 18, iy = 18;
  const double phi = fm.flux_at(ix, iy);
  const double r_equal = side / std::sqrt(kPi);
  const double analytic = disk_flux(r_equal, 40.0);
  EXPECT_NEAR(phi, analytic, analytic * 0.2);
}

TEST(FluxMap, SelfCancellationWholeDieVsMatched) {
  // Per-dipole flux: a die-sized loop captures *less* flux from a central
  // source than a loop matched to the return radius — the paper's
  // self-cancellation argument.
  const Rect die{{0, 0}, {576, 576}};
  FluxMap::Params params;
  params.dipole_height_um = 40.0;
  const FluxMap small = FluxMap::compute(square_coil({208, 208}, 160), die,
                                         params);
  const FluxMap big = FluxMap::compute(square_coil({8, 8}, 560), die, params);
  const double phi_small = std::fabs(small.flux_at(18, 18));
  const double phi_big = std::fabs(big.flux_at(18, 18));
  EXPECT_GT(phi_small, phi_big);
}

TEST(FluxMap, SignedAreaMatchesGeometry) {
  const Rect die{{0, 0}, {576, 576}};
  FluxMap::Params params;
  const FluxMap fm = FluxMap::compute(square_coil({100, 100}, 200), die,
                                      params);
  EXPECT_NEAR(fm.signed_area_m2(), 200e-6 * 200e-6,
              200e-6 * 200e-6 * 0.05);
  EXPECT_NEAR(fm.gross_area_m2(), std::fabs(fm.signed_area_m2()), 1e-12);
}

TEST(FluxMap, GainForUniformVsLocalizedDensity) {
  const Rect die{{0, 0}, {576, 576}};
  FluxMap::Params params;
  const FluxMap fm = FluxMap::compute(square_coil({208, 208}, 160), die,
                                      params);
  Grid2D local(36, 36, die);
  local.at(18, 18) = 100.0;  // all cells right under the coil
  Grid2D remote(36, 36, die);
  remote.at(2, 2) = 100.0;  // far corner
  EXPECT_GT(std::fabs(fm.gain_for(local)), std::fabs(fm.gain_for(remote)));
}

TEST(FluxMap, GainIsDensityNormalized) {
  const Rect die{{0, 0}, {576, 576}};
  FluxMap::Params params;
  const FluxMap fm = FluxMap::compute(square_coil({208, 208}, 160), die,
                                      params);
  Grid2D d(36, 36, die);
  d.at(18, 18) = 1.0;
  const double g1 = fm.gain_for(d);
  d.scale(50.0);
  EXPECT_NEAR(fm.gain_for(d), g1, std::fabs(g1) * 1e-12);
}

TEST(FluxMap, EmptyDensityGivesZero) {
  const Rect die{{0, 0}, {576, 576}};
  FluxMap::Params params;
  const FluxMap fm = FluxMap::compute(square_coil({208, 208}, 160), die,
                                      params);
  const Grid2D empty(36, 36, die);
  EXPECT_DOUBLE_EQ(fm.gain_for(empty), 0.0);
}

TEST(FluxMap, RejectsDegenerateCoil) {
  const Rect die{{0, 0}, {576, 576}};
  FluxMap::Params params;
  EXPECT_THROW(FluxMap::compute(Polyline{{0, 0}, {1, 1}}, die, params),
               std::invalid_argument);
}

// ------------------------------------------------------------------- noise

TEST(Noise, JohnsonFormula) {
  // 1 kΩ at 300 K over 1 MHz: sqrt(4kTRB) ≈ 4.07 µV.
  EXPECT_NEAR(johnson_vrms(1000.0, 300.0, 1.0e6), 4.07e-6, 0.05e-6);
}

TEST(Noise, RmsScalesWithResistance) {
  Rng rng1(1), rng2(1);
  NoiseParams lo, hi;
  lo.coil_resistance_ohm = 50.0;
  hi.coil_resistance_ohm = 5000.0;
  lo.include_spur = hi.include_spur = false;
  lo.signed_area_m2 = hi.signed_area_m2 = 0.0;
  const auto nl = generate_noise(lo, 20000, rng1);
  const auto nh = generate_noise(hi, 20000, rng2);
  double sl = 0.0, sh = 0.0;
  for (double v : nl) sl += v * v;
  for (double v : nh) sh += v * v;
  EXPECT_GT(sh, sl);
}

TEST(Noise, AmbientScalesWithArea) {
  Rng rng1(2), rng2(2);
  NoiseParams small, big;
  small.signed_area_m2 = 1e-9;
  big.signed_area_m2 = 1e-6;
  small.include_spur = big.include_spur = false;
  const auto ns = generate_noise(small, 20000, rng1);
  const auto nb = generate_noise(big, 20000, rng2);
  double ss = 0.0, sb = 0.0;
  for (double v : ns) ss += v * v;
  for (double v : nb) sb += v * v;
  EXPECT_GT(sb, ss * 10.0);
}

TEST(Noise, DeterministicPerRng) {
  Rng rng1(3), rng2(3);
  NoiseParams p;
  const auto a = generate_noise(p, 100, rng1);
  const auto b = generate_noise(p, 100, rng2);
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- induced

TEST(Induced, ChargeConservedPerCycle) {
  const std::vector<double> toggles = {10.0, 0.0, 5.0};
  const double fs = 1.056e9;
  const auto current = toggles_to_current(toggles, 32, fs);
  ASSERT_EQ(current.size(), 96u);
  // Integral of current over cycle 0 = charge = toggles * Q.
  double q0 = 0.0;
  for (std::size_t i = 0; i < 32; ++i) q0 += current[i] / fs;
  EXPECT_NEAR(q0, 10.0 * kChargePerToggle, 1e-20);
  for (std::size_t i = 32; i < 64; ++i) EXPECT_DOUBLE_EQ(current[i], 0.0);
}

TEST(Induced, FluxAccumulationIsLinear) {
  std::vector<double> flux(10, 0.0);
  const std::vector<double> current(10, 2.0);
  accumulate_flux(flux, current, 3.0);
  for (double f : flux) EXPECT_NEAR(f, 3.0 * kLoopAreaM2 * 2.0, 1e-20);
  accumulate_flux(flux, current, 3.0);
  for (double f : flux) EXPECT_NEAR(f, 2.0 * 3.0 * kLoopAreaM2 * 2.0, 1e-20);
}

TEST(Induced, VoltageIsNegativeDerivative) {
  const std::vector<double> flux = {0.0, 1.0e-12, 1.0e-12, 0.0};
  const auto v = induced_voltage(flux, 1.0e9);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], -1.0e-3);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 1.0e-3);
}

TEST(Induced, SizeMismatchThrows) {
  std::vector<double> flux(5, 0.0);
  const std::vector<double> current(6, 0.0);
  EXPECT_THROW(accumulate_flux(flux, current, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace psa::em
