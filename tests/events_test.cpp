// events_test.cpp — the structured event log: total ordering of sequence
// numbers under parallel_for hammering (the TSan job runs this too), ring
// capacity and drop accounting, incremental since() reads, the JSONL sink
// (escaping, line cap), and the PSA_EVENT macro wiring into the global log.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "fixtures.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"

namespace psa {
namespace {

// ------------------------------------------------------------- ordering

TEST(EventLog, SeqStrictlyIncreasingFromOne) {
  obs::EventLog log(16);
  EXPECT_EQ(log.last_seq(), 0u);
  EXPECT_EQ(log.emit(obs::Severity::kInfo, "a"), 1u);
  EXPECT_EQ(log.emit(obs::Severity::kWarn, "b"), 2u);
  EXPECT_EQ(log.emit(obs::Severity::kAlarm, "c"), 3u);
  EXPECT_EQ(log.last_seq(), 3u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, ConcurrentEmittersGetUniqueOrderedSeqs) {
  tests::ThreadCountGuard guard;
  set_thread_count(4);
  obs::EventLog log(8192);
  constexpr std::size_t kEvents = 4000;
  parallel_for(0, kEvents, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      log.emit(obs::Severity::kInfo, "hammer", {{"i", i}});
    }
  });
  EXPECT_EQ(log.last_seq(), kEvents);
  EXPECT_EQ(log.size(), kEvents);

  // The ring must hold every seq exactly once, oldest first.
  const std::vector<obs::Event> all = log.since(0, kEvents);
  ASSERT_EQ(all.size(), kEvents);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i + 1);
  }
}

// ------------------------------------------------------ ring + since()

TEST(EventLog, RingDropsOldestAndCountsIt) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; ++i) log.emit(obs::Severity::kInfo, "e");
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.since(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 7u);  // 1..6 overwritten
  EXPECT_EQ(events.back().seq, 10u);
}

TEST(EventLog, SinceIsIncrementalAndCapped) {
  obs::EventLog log(64);
  for (int i = 0; i < 20; ++i) log.emit(obs::Severity::kInfo, "e");
  EXPECT_EQ(log.since(20).size(), 0u);
  EXPECT_EQ(log.since(15).size(), 5u);
  EXPECT_EQ(log.since(15).front().seq, 16u);
  EXPECT_EQ(log.since(0, 3).size(), 3u);
  EXPECT_EQ(log.since(0, 3).front().seq, 1u);  // oldest first, then cap
  // A consumer that fell behind a ring overwrite resumes at the oldest
  // surviving event rather than erroring.
  obs::EventLog small(4);
  for (int i = 0; i < 8; ++i) small.emit(obs::Severity::kInfo, "e");
  EXPECT_EQ(small.since(2).front().seq, 5u);
}

TEST(EventLog, ClearKeepsNumbering) {
  obs::EventLog log(8);
  log.emit(obs::Severity::kInfo, "a");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.emit(obs::Severity::kInfo, "b"), 2u);
}

// ----------------------------------------------------------------- JSON

TEST(EventLog, WriteJsonEscapesAndTypesArgs) {
  obs::EventLog log(8);
  log.emit(obs::Severity::kAlarm, "monitor.alarm",
           {{"sensor", std::size_t{10}},
            {"z", 41.25},
            {"note", "say \"hi\"\n"}});
  std::ostringstream os;
  log.write_jsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"severity\":\"alarm\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"monitor.alarm\""), std::string::npos);
  EXPECT_NE(line.find("\"sensor\":10"), std::string::npos);
  EXPECT_NE(line.find("\"z\":41.25"), std::string::npos);
  // String args are quoted with the quote and newline escaped.
  EXPECT_NE(line.find("\"note\":\"say \\\"hi\\\"\\n\""), std::string::npos)
      << line;
}

TEST(EventLog, SeverityNames) {
  EXPECT_STREQ(obs::severity_name(obs::Severity::kDebug), "debug");
  EXPECT_STREQ(obs::severity_name(obs::Severity::kInfo), "info");
  EXPECT_STREQ(obs::severity_name(obs::Severity::kWarn), "warn");
  EXPECT_STREQ(obs::severity_name(obs::Severity::kAlarm), "alarm");
}

// ----------------------------------------------------------------- sink

TEST(EventLog, SinkWritesOneLinePerEventAndCaps) {
  const std::string path = ::testing::TempDir() + "/psa_events_sink.jsonl";
  obs::EventLog log(64);
  ASSERT_TRUE(log.open_sink(path, /*max_lines=*/3));
  for (int i = 0; i < 6; ++i) {
    log.emit(obs::Severity::kInfo, "tick", {{"i", i}});
  }
  log.close_sink();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // 3 capped event lines, plus the one-time "sink capped" notice.
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"seq\":3"), std::string::npos);
  bool capped_notice = false;
  for (const std::string& l : lines) {
    if (l.find("sink_capped") != std::string::npos) capped_notice = true;
  }
  EXPECT_TRUE(capped_notice);
  std::remove(path.c_str());
}

TEST(EventLog, SinkRefusesUnwritablePath) {
  obs::EventLog log(8);
  EXPECT_FALSE(log.open_sink("/nonexistent-dir-zz/events.jsonl"));
  // Emitting after a failed open must not crash.
  log.emit(obs::Severity::kInfo, "still-fine");
  EXPECT_EQ(log.sink_lines(), 0u);
}

// ---------------------------------------------------------------- macro

TEST(EventLog, MacroFeedsGlobalLogWhenEnabled) {
  const std::uint64_t before = obs::EventLog::global().last_seq();
  PSA_EVENT(kInfo, "events_test.macro", {{"k", 1}});
#if PSA_OBS_ENABLED
  EXPECT_EQ(obs::EventLog::global().last_seq(), before + 1);
  const auto tail = obs::EventLog::global().since(before, 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].name, "events_test.macro");
#else
  EXPECT_EQ(obs::EventLog::global().last_seq(), before);
#endif
}

}  // namespace
}  // namespace psa
