// Tests for the second extension wave: split-manufacturing layout
// verification (Section IV-B), MERO-style test-phase vector generation
// (Section II-A), the Q15 fixed-point FFT, and randomized Trojan placement
// generalization.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pipeline.hpp"
#include "common/units.hpp"
#include "dsp/fixed_fft.hpp"
#include "psa/layout_verify.hpp"
#include "testgen/mero.hpp"

namespace psa {
namespace {

// ------------------------------------------------------- layout verification

TEST(LayoutVerify, GoldenLayoutIsClean) {
  const sensor::PsaMetalLayout layout = sensor::PsaMetalLayout::golden();
  EXPECT_EQ(layout.shapes.size(), 72u);  // 36 H + 36 V tracks
  EXPECT_EQ(layout.switch_sites.size(), sensor::kSwitches);
  const sensor::LayoutVerdict v = sensor::verify_layout(layout);
  EXPECT_FALSE(v.tampered());
}

TEST(LayoutVerify, ExtractionRecognizesAllTracks) {
  const sensor::ExtractedLattice ex =
      sensor::extract_lattice(sensor::PsaMetalLayout::golden());
  EXPECT_EQ(ex.h_tracks_um.size(), 36u);
  EXPECT_EQ(ex.v_tracks_um.size(), 36u);
  EXPECT_TRUE(ex.cut_tracks_um.empty());
  EXPECT_TRUE(ex.foreign_shapes.empty());
  EXPECT_EQ(ex.switch_count, sensor::kSwitches);
}

TEST(LayoutVerify, CutWireDetected) {
  sensor::PsaMetalLayout layout = sensor::PsaMetalLayout::golden();
  ASSERT_TRUE(layout.cut_wire(sensor::MetalLayer::kM7Horizontal, 10, 300.0));
  const sensor::LayoutVerdict v = sensor::verify_layout(layout);
  ASSERT_TRUE(v.tampered());
  bool found = false;
  for (const auto& d : v.defects) {
    if (d.kind == sensor::LayoutDefect::Kind::kCutTrack) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LayoutVerify, BridgeDetectedAsForeignMetal) {
  sensor::PsaMetalLayout layout = sensor::PsaMetalLayout::golden();
  // A rogue strap between two vertical wires, far from any H track.
  layout.add_bridge(sensor::MetalLayer::kM7Horizontal,
                    Rect{{100.0, 255.0}, {150.0, 256.0}});
  const sensor::LayoutVerdict v = sensor::verify_layout(layout);
  ASSERT_TRUE(v.tampered());
  EXPECT_EQ(v.defects.size(), 1u);
  EXPECT_EQ(v.defects[0].kind, sensor::LayoutDefect::Kind::kForeignMetal);
}

TEST(LayoutVerify, RemovedSwitchDetected) {
  sensor::PsaMetalLayout layout = sensor::PsaMetalLayout::golden();
  ASSERT_TRUE(layout.remove_switch(5, 7));
  EXPECT_FALSE(layout.remove_switch(5, 7));  // already gone
  const sensor::LayoutVerdict v = sensor::verify_layout(layout);
  ASSERT_TRUE(v.tampered());
  EXPECT_EQ(v.defects[0].kind,
            sensor::LayoutDefect::Kind::kSwitchCountMismatch);
}

TEST(LayoutVerify, ShiftedWireDetected) {
  sensor::PsaMetalLayout layout = sensor::PsaMetalLayout::golden();
  ASSERT_TRUE(layout.shift_wire(sensor::MetalLayer::kM8Vertical, 20, 3.0));
  const sensor::LayoutVerdict v = sensor::verify_layout(layout);
  ASSERT_TRUE(v.tampered());
  bool missing = false;
  bool misplaced = false;
  for (const auto& d : v.defects) {
    if (d.kind == sensor::LayoutDefect::Kind::kMissingTrack) missing = true;
    if (d.kind == sensor::LayoutDefect::Kind::kMisplacedTrack) {
      misplaced = true;
    }
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(misplaced);
}

TEST(LayoutVerify, DefectKindsHaveNames) {
  EXPECT_FALSE(sensor::to_string(
                   sensor::LayoutDefect::Kind::kCutTrack).empty());
  EXPECT_FALSE(sensor::to_string(
                   sensor::LayoutDefect::Kind::kForeignMetal).empty());
}

// ---------------------------------------------------------------- testgen

TEST(Mero, RareConditionSemantics) {
  const testgen::RareCondition t2 = testgen::RareCondition::t2_trigger();
  aes::Block pt{};
  EXPECT_FALSE(t2.satisfied_by(pt));
  pt[0] = 0xAA;
  pt[1] = 0xAA;
  EXPECT_TRUE(t2.satisfied_by(pt));
  pt[5] = 0x77;  // unmasked bytes don't matter
  EXPECT_TRUE(t2.satisfied_by(pt));
  EXPECT_NEAR(t2.random_hit_probability(), 1.0 / 65536.0, 1e-12);
}

TEST(Mero, RandomStimulusRarelyHitsT2) {
  Rng rng(1);
  const std::vector<testgen::RareCondition> conds = {
      testgen::RareCondition::t2_trigger()};
  const testgen::GenerationResult r =
      testgen::random_stimulus(conds, 3, 5000, rng);
  // Expected hits in 5000 vectors: 5000/65536 << 1.
  EXPECT_FALSE(r.stats.all_covered);
  EXPECT_EQ(r.stats.vectors, 5000u);
}

TEST(Mero, DirectedStimulusCoversQuickly) {
  Rng rng(2);
  const std::vector<testgen::RareCondition> conds = {
      testgen::RareCondition::t2_trigger()};
  const testgen::GenerationResult r =
      testgen::mero_stimulus(conds, 5, 5000, rng);
  EXPECT_TRUE(r.stats.all_covered);
  EXPECT_GE(r.stats.activations[0], 5u);
  EXPECT_LE(r.stats.vectors, 16u);  // orders of magnitude below random
  for (const aes::Block& v : r.vectors) {
    EXPECT_TRUE(conds[0].satisfied_by(v));
  }
}

TEST(Mero, MultipleConditions) {
  Rng rng(3);
  testgen::RareCondition other;
  other.name = "tail 0x55";
  other.mask[15] = 0xFF;
  other.value[15] = 0x55;
  const std::vector<testgen::RareCondition> conds = {
      testgen::RareCondition::t2_trigger(), other};
  const testgen::GenerationResult r =
      testgen::mero_stimulus(conds, 4, 10000, rng);
  EXPECT_TRUE(r.stats.all_covered);
  EXPECT_GE(r.stats.activations[0], 4u);
  EXPECT_GE(r.stats.activations[1], 4u);
}

TEST(Mero, ScriptedVectorsFireT2DuringTestPhase) {
  // End-to-end test-phase flow: MERO vectors streamed into the chip make
  // the dormant T2 payload switch, which the PSA then sees.
  Rng rng(4);
  const testgen::GenerationResult gen = testgen::mero_stimulus(
      {testgen::RareCondition::t2_trigger()}, 8, 5000, rng);

  aes::ActivityConfig cfg;
  cfg.scripted_plaintexts = gen.vectors;
  const aes::Key key{};
  const aes::AesActivityModel model(key, cfg, 5);
  const aes::CoreActivityTrace trace = model.generate(512);
  ASSERT_FALSE(trace.encryptions.empty());
  for (const aes::EncryptionEvent& e : trace.encryptions) {
    EXPECT_EQ(e.plaintext[0], 0xAA);
    EXPECT_EQ(e.plaintext[1], 0xAA);
  }
}

// ---------------------------------------------------------------- fixed FFT

TEST(FixedFft, Q15ConversionRoundTrip) {
  EXPECT_EQ(dsp::double_to_q15(0.0), 0);
  EXPECT_EQ(dsp::double_to_q15(1.0), 32767);   // saturates
  EXPECT_EQ(dsp::double_to_q15(-1.0), -32768);
  EXPECT_NEAR(dsp::q15_to_double(dsp::double_to_q15(0.5)), 0.5, 1e-4);
}

TEST(FixedFft, RejectsNonPow2) {
  std::vector<dsp::Q15Complex> bad(12);
  EXPECT_THROW(dsp::fixed_fft(bad), std::invalid_argument);
}

TEST(FixedFft, SinePeakMatchesDoubleFft) {
  const std::size_t n = 1024;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.8 * std::sin(kTwoPi * 37.0 * static_cast<double>(i) /
                          static_cast<double>(n));
  }
  const std::vector<double> mags = dsp::fixed_fft_magnitudes(x, 1.0);
  // Peak at bin 37 with |X| = 0.8 * n/2.
  EXPECT_NEAR(mags[37], 0.8 * static_cast<double>(n) / 2.0,
              0.8 * static_cast<double>(n) / 2.0 * 0.02);
}

TEST(FixedFft, RelativeErrorSmallForStrongBins) {
  Rng rng(6);
  const std::size_t n = 4096;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    x[i] = 0.4 * std::sin(kTwoPi * 100.0 * t) +
           0.3 * std::sin(kTwoPi * 333.0 * t) + 0.01 * rng.gaussian();
  }
  // The Q15 pipeline stays within a few percent on bins that matter.
  EXPECT_LT(dsp::fixed_fft_relative_error(x, 1.0), 0.05);
}

TEST(FixedFft, BlockExponentTracksStages) {
  std::vector<dsp::Q15Complex> buf(256);
  buf[0].re = 16384;
  const dsp::FixedFftResult r = dsp::fixed_fft(buf);
  EXPECT_EQ(r.block_exponent, 8);  // log2(256) stages, 1/2 scale each
}

// ----------------------------------------- randomized placement generalizes

TEST(RandomPlacement, LocalizationTracksGroundTruth) {
  // Move the Trojans somewhere else entirely; the 16-sensor scan must still
  // point at the sensor containing them. Two seeds to keep runtime sane.
  for (std::uint64_t seed : {11u, 29u}) {
    sim::ChipSimulator chip(sim::SimTiming{},
                            layout::Floorplan::aes_testchip_randomized(seed));
    analysis::Pipeline pipeline(chip);
    pipeline.enroll(sim::Scenario::baseline(8000 + seed));

    // Check one always-on Trojan per chip (T4: strongest, placement-agnostic
    // traffic).
    const sim::Scenario sc =
        sim::Scenario::with_trojan(trojan::TrojanKind::kT4DoS, 8100 + seed);
    const analysis::LocalizationResult loc = pipeline.localize(sc);
    ASSERT_TRUE(loc.localized) << "seed " << seed;

    const Point truth = chip.floorplan().module_centroid("t4");
    // The winning sensor's region must contain the Trojan's centroid.
    EXPECT_TRUE(loc.region.contains(truth))
        << "seed " << seed << ": sensor " << loc.best_sensor << " truth ("
        << truth.x << "," << truth.y << ")";
  }
}

TEST(RandomPlacement, BudgetUnchanged) {
  const layout::Floorplan fp = layout::Floorplan::aes_testchip_randomized(3);
  EXPECT_EQ(fp.total_cells(true), layout::TableIIBudget::kOverall);
  // Trojans are somewhere on the die, inside it.
  for (const char* t : {"t1", "t2", "t3", "t4"}) {
    const layout::Module* m = fp.find(t);
    ASSERT_NE(m, nullptr);
    for (const Rect& r : m->regions) {
      EXPECT_TRUE(fp.die().contains(r.lo));
      EXPECT_GE(fp.die().hi.x, r.hi.x);
      EXPECT_GE(fp.die().hi.y, r.hi.y);
    }
  }
}

TEST(RandomPlacement, DifferentSeedsDifferentPlaces) {
  const layout::Floorplan a = layout::Floorplan::aes_testchip_randomized(1);
  const layout::Floorplan b = layout::Floorplan::aes_testchip_randomized(2);
  EXPECT_GT(distance(a.module_centroid("t1"), b.module_centroid("t1")), 10.0);
}

}  // namespace
}  // namespace psa
