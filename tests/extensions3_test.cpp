// Tests for the third extension wave: the thermal model behind T4's DoS
// story and the ROC / threshold-calibration analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/roc.hpp"
#include "sim/thermal.hpp"

namespace psa {
namespace {

// ------------------------------------------------------------------ thermal

TEST(Thermal, SteadyStateScalesWithPower) {
  const sim::ThermalModel model;
  const double idle = model.steady_state_k(0.0);
  const double loaded = model.steady_state_k(0.5);
  EXPECT_GT(idle, model.params().ambient_k);  // static power always burns
  EXPECT_NEAR(loaded - idle, 0.5 * model.params().r_theta_ja, 1e-9);
}

TEST(Thermal, TrajectoryConvergesToSteadyState) {
  const sim::ThermalModel model;
  const std::vector<double> power(2000, 0.4);  // constant 0.4 W
  const auto traj = model.trajectory_k(power, 0.01);  // 20 s total
  const double target = model.steady_state_k(0.4);
  EXPECT_NEAR(traj.back(), target, 0.05);
  // Monotone approach from ambient.
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i] + 1e-12, traj[i - 1]);
  }
}

TEST(Thermal, StepResponseTimeConstant) {
  sim::ThermalParams p;
  p.tau_s = 1.0;
  const sim::ThermalModel model(p);
  const std::vector<double> power(1000, 1.0);
  const auto traj = model.trajectory_k(power, 0.001);  // 1 s = 1 tau
  const double target = model.steady_state_k(1.0);
  const double expect = p.ambient_k + (target - p.ambient_k) *
                                          (1.0 - std::exp(-1.0));
  EXPECT_NEAR(traj.back(), expect, 0.5);
}

TEST(Thermal, SettleTime) {
  const sim::ThermalModel model;
  const double t = model.settle_time_s(model.params().ambient_k, 0.5);
  // ~tau * ln(100) ≈ 4.6 tau.
  EXPECT_NEAR(t, model.params().tau_s * std::log(100.0), 0.5);
  EXPECT_DOUBLE_EQ(model.settle_time_s(model.steady_state_k(0.5), 0.5), 0.0);
}

TEST(Thermal, RejectsBadDt) {
  const sim::ThermalModel model;
  EXPECT_THROW(model.trajectory_k({1.0}, 0.0), std::invalid_argument);
}

TEST(Thermal, DosTrojanRaisesChipPower) {
  sim::ChipSimulator chip(sim::SimTiming{}, layout::Floorplan::aes_testchip());
  const double base =
      sim::average_dynamic_power(chip, sim::Scenario::baseline(3), 512);
  const double dos = sim::average_dynamic_power(
      chip, sim::Scenario::with_trojan(trojan::TrojanKind::kT4DoS, 3), 512);
  EXPECT_GT(base, 0.0);
  EXPECT_GT(dos, base * 1.1);  // T4 adds >10 % load
  // And the steady-state junction temperature rises measurably.
  const sim::ThermalModel model;
  EXPECT_GT(model.steady_state_k(dos) - model.steady_state_k(base), 0.2);
}

// ---------------------------------------------------------------------- ROC

TEST(Roc, SeparatedScoresGiveAucOne) {
  const std::vector<double> neg = {1.0, 2.0, 3.0};
  const std::vector<double> pos = {50.0, 80.0, 90.0};
  const analysis::RocAnalysis roc = analysis::roc_from_scores(neg, pos);
  EXPECT_NEAR(roc.auc, 1.0, 1e-9);
  // Recommendation sits between the populations (geometric mean).
  EXPECT_GT(roc.recommended_threshold, 3.0);
  EXPECT_LT(roc.recommended_threshold, 50.0);
}

TEST(Roc, OverlappingScoresAucBelowOne) {
  const std::vector<double> neg = {1.0, 5.0, 9.0, 13.0};
  const std::vector<double> pos = {7.0, 11.0, 15.0, 20.0};
  const analysis::RocAnalysis roc =
      analysis::roc_from_scores(neg, pos, /*fpr_target=*/0.25);
  EXPECT_LT(roc.auc, 1.0);
  EXPECT_GT(roc.auc, 0.5);
  // Recommended threshold keeps measured FPR <= 0.25: only one negative
  // (13.0) may exceed it.
  int fp = 0;
  for (double n : neg) {
    if (n > roc.recommended_threshold) ++fp;
  }
  EXPECT_LE(fp, 1);
}

TEST(Roc, CurveIsMonotoneInThreshold) {
  const std::vector<double> neg = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pos = {3.5, 5.0, 6.0};
  const analysis::RocAnalysis roc = analysis::roc_from_scores(neg, pos);
  for (std::size_t i = 1; i < roc.curve.size(); ++i) {
    EXPECT_LE(roc.curve[i].true_positive_rate,
              roc.curve[i - 1].true_positive_rate + 1e-12);
    EXPECT_LE(roc.curve[i].false_positive_rate,
              roc.curve[i - 1].false_positive_rate + 1e-12);
  }
}

TEST(Roc, EmptyInputsSafe) {
  const analysis::RocAnalysis roc = analysis::roc_from_scores({}, {1.0});
  EXPECT_TRUE(roc.curve.empty());
  EXPECT_DOUBLE_EQ(roc.auc, 0.0);
}

TEST(Roc, PipelineScoresFullySeparated) {
  // The deployment calibration run: on this chip the negative and positive
  // score populations must not overlap at sensor 10 (AUC 1), and the
  // recommended threshold must clear every negative comfortably.
  sim::ChipSimulator chip(sim::SimTiming{}, layout::Floorplan::aes_testchip());
  analysis::Pipeline pipeline(chip);
  pipeline.enroll(sim::Scenario::baseline(12000));
  const analysis::RocAnalysis roc =
      analysis::roc_analysis(pipeline, 10, /*trials=*/4, 0.0, 12100);
  ASSERT_EQ(roc.negative_scores.size(), 4u);
  ASSERT_EQ(roc.positive_scores.size(), 16u);
  EXPECT_NEAR(roc.auc, 1.0, 1e-9);
  EXPECT_GT(roc.recommended_threshold, roc.negative_scores.back());
  EXPECT_LT(roc.recommended_threshold, roc.positive_scores.front());
}

}  // namespace
}  // namespace psa
