// Tests for the extension features: PSA self-test (Section IV), quadrant
// refinement (Section III's reshaping), the wire-geometry model (Section
// V-A), and the OCM supply-rail baseline ([10][11]).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pipeline.hpp"
#include "analysis/refine.hpp"
#include "baseline/ocm.hpp"
#include "psa/selftest.hpp"
#include "psa/wire_model.hpp"

namespace psa {
namespace {

// ----------------------------------------------------------------- selftest

TEST(SelfTest, PristineArrayPasses) {
  const sensor::SelfTest st;
  const sensor::SelfTestReport report = st.run();
  EXPECT_FALSE(report.tampered);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_EQ(report.entries.size(), 17u);  // 16 sensors + whole-die
  for (const auto& e : report.entries) {
    EXPECT_EQ(e.error, sensor::CoilError::kNone) << e.pattern;
    EXPECT_NEAR(e.resistance_ohm, e.expected_ohm, e.expected_ohm * 0.01)
        << e.pattern;
  }
}

TEST(SelfTest, StuckOpenGateCaught) {
  // Break one T-gate used by sensor 0's coil (corner switch at (0, 0)).
  sensor::ArrayFaults faults;
  faults.stuck_open.push_back({0, 0});
  const sensor::SelfTest st;
  const sensor::SelfTestReport report = st.run(faults);
  EXPECT_TRUE(report.tampered);
  EXPECT_GE(report.failures(), 1u);
  EXPECT_EQ(report.entries[0].error, sensor::CoilError::kOpenCircuit);
  // Sensors not using that switch still pass.
  EXPECT_EQ(report.entries[15].error, sensor::CoilError::kNone);
}

TEST(SelfTest, StuckClosedGateCaught) {
  // A stuck-closed switch on a wire sensor 5 uses: sensor 5 spans rows
  // 8..19, cols 8..19 with corners (8,8),(19,8),(19,19),(9,19). A rogue
  // closed switch at (14, 8) shorts its left vertical wire.
  sensor::ArrayFaults faults;
  faults.stuck_closed.push_back({14, 8});
  const sensor::SelfTest st;
  const sensor::SelfTestReport report = st.run(faults);
  EXPECT_TRUE(report.tampered);
  EXPECT_EQ(report.entries[5].error, sensor::CoilError::kShortCircuit);
}

TEST(SelfTest, ResistanceDriftCaught) {
  sensor::ArrayFaults faults;
  faults.resistance_scale = 1.4;  // e.g. thinned wires / swapped switches
  const sensor::SelfTest st;
  const sensor::SelfTestReport report = st.run(faults);
  EXPECT_TRUE(report.tampered);
  EXPECT_EQ(report.failures(), report.entries.size());  // all patterns off
  for (const auto& e : report.entries) {
    EXPECT_EQ(e.error, sensor::CoilError::kNone);  // connectivity intact
  }
}

TEST(SelfTest, SmallDriftWithinTolerancePasses) {
  sensor::ArrayFaults faults;
  faults.resistance_scale = 1.05;  // inside the ±15 % band
  const sensor::SelfTest st;
  EXPECT_FALSE(st.run(faults).tampered);
}

// ------------------------------------------------------------------ refine

TEST(Refine, QuadrantProgramsAreValidCoils) {
  for (std::size_t k = 0; k < 16; ++k) {
    for (std::size_t q = 0; q < 4; ++q) {
      const sensor::SensorProgram p =
          analysis::quadrant_program(k, q / 2, q % 2);
      EXPECT_TRUE(p.extract().ok()) << "sensor " << k << " quadrant " << q;
    }
  }
  EXPECT_THROW(analysis::quadrant_program(16, 0, 0), std::out_of_range);
  EXPECT_THROW(analysis::quadrant_program(0, 2, 0), std::out_of_range);
}

TEST(Refine, QuadrantRegionsTileTheSensor) {
  const Rect sensor10 = layout::standard_sensor_region(10);
  for (std::size_t q = 0; q < 4; ++q) {
    const Rect r = analysis::quadrant_region(10, q / 2, q % 2);
    EXPECT_DOUBLE_EQ(r.width(), 80.0);
    EXPECT_DOUBLE_EQ(r.height(), 80.0);
    // Inside the sensor's nominal region.
    EXPECT_GE(r.lo.x, sensor10.lo.x - 16.0);
    EXPECT_LE(r.hi.x, sensor10.hi.x + 16.0);
  }
}

TEST(Refine, HeatFoldingPicksHottestQuadrant) {
  std::array<double, 4> heat = {0.1, 0.2, 0.1, 2.0};
  const analysis::RefinedLocation r = analysis::refine_from_heat(10, heat);
  EXPECT_EQ(r.best_quadrant, 3u);
  EXPECT_EQ(r.quadrant_region, analysis::quadrant_region(10, 1, 1));
  EXPECT_GT(r.contrast_db, 10.0);
  // Centroid pulled toward the hot quadrant.
  const Point hot = analysis::quadrant_region(10, 1, 1).center();
  const Point cold = analysis::quadrant_region(10, 0, 0).center();
  EXPECT_LT(distance(r.estimate, hot), distance(r.estimate, cold));
}

TEST(Refine, ZeroHeatFallsBackToSensorCentre) {
  const analysis::RefinedLocation r =
      analysis::refine_from_heat(10, {0.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(r.estimate, layout::standard_sensor_region(10).center());
}

// --------------------------------------------------------------- wire model

TEST(WireModel, ElectricalScalings) {
  const sensor::WireGeometry nominal{16.0, 1.0};
  const auto e = sensor::coil_electrical(nominal, 176.0);
  EXPECT_GT(e.resistance_ohm, 0.0);
  EXPECT_GT(e.capacitance_f, 0.0);
  EXPECT_NEAR(e.routing_fraction, 1.0 / 16.0, 1e-12);

  // Wider wire: less R, more C.
  const auto wide = sensor::coil_electrical({16.0, 2.0}, 176.0);
  EXPECT_LT(wide.resistance_ohm, e.resistance_ohm);
  EXPECT_GT(wide.capacitance_f, e.capacitance_f);

  // Coarser pitch: fewer crossings -> less C.
  const auto coarse = sensor::coil_electrical({32.0, 1.0}, 176.0);
  EXPECT_LT(coarse.capacitance_f, e.capacitance_f);
}

TEST(WireModel, TransferFlatInBandRollsOffAbove) {
  const sensor::WireGeometry g{16.0, 1.0};
  const double lo = sensor::coil_transfer(g, 176.0, 10.0e6);
  const double hi = sensor::coil_transfer(g, 176.0, 100.0e6);
  const double far = sensor::coil_transfer(g, 176.0, 100.0e9);
  // Flat across the paper's 10-100 MHz band (mild LC peaking allowed),
  // rolling off far above the LC resonance.
  EXPECT_GT(lo, 0.9);
  EXPECT_GT(hi, 0.9);
  EXPECT_LT(far, lo * 0.5);
}

TEST(WireModel, FomFavorsWiderWireAtFixedPitch) {
  const double fom_thin = sensor::band_figure_of_merit({16.0, 0.5}, 176.0,
                                                       10.0e6, 100.0e6);
  const double fom_nominal = sensor::band_figure_of_merit({16.0, 1.0}, 176.0,
                                                          10.0e6, 100.0e6);
  EXPECT_GT(fom_nominal, fom_thin);
}

TEST(WireModel, SweepRespectsRoutingBudget) {
  const auto ranked = sensor::sweep_geometries({8.0, 16.0}, {0.5, 1.0, 2.0},
                                               176.0, 1.0 / 16.0);
  ASSERT_FALSE(ranked.empty());
  for (const auto& [g, fom] : ranked) {
    EXPECT_LE(g.width_um / g.pitch_um, 1.0 / 16.0 + 1e-12);
    EXPECT_GT(fom, 0.0);
  }
  // Sorted descending.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
}

TEST(WireModel, RejectsBadInputs) {
  EXPECT_THROW(sensor::coil_electrical({0.0, 1.0}, 176.0),
               std::invalid_argument);
  EXPECT_THROW(sensor::band_figure_of_merit({16.0, 1.0}, 176.0, 2e6, 1e6),
               std::invalid_argument);
}

// --------------------------------------------------------------------- OCM

class OcmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chip_ = new sim::ChipSimulator(sim::SimTiming{},
                                   layout::Floorplan::aes_testchip());
  }
  static void TearDownTestSuite() {
    delete chip_;
    chip_ = nullptr;
  }
  static sim::ChipSimulator* chip_;
};

sim::ChipSimulator* OcmTest::chip_ = nullptr;

TEST_F(OcmTest, CaptureScalesWithPdnResistance) {
  baseline::OcmParams lo_p;
  lo_p.pdn_resistance_ohm = 0.1;
  baseline::OcmParams hi_p;
  hi_p.pdn_resistance_ohm = 1.0;
  const baseline::OcmSensor lo(*chip_, lo_p);
  const baseline::OcmSensor hi(*chip_, hi_p);
  const auto a = lo.capture(sim::Scenario::baseline(3), 128);
  const auto b = hi.capture(sim::Scenario::baseline(3), 128);
  double ra = 0.0, rb = 0.0;
  for (double v : a) ra += v * v;
  for (double v : b) rb += v * v;
  EXPECT_GT(rb, 4.0 * ra);
}

TEST_F(OcmTest, DetectsActiveTrojans) {
  baseline::OcmDetector det(*chip_);
  det.enroll(sim::Scenario::baseline(900));
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const analysis::DetectionResult r =
        det.detect(sim::Scenario::with_trojan(kind, 901));
    EXPECT_TRUE(r.detected) << trojan::module_name(kind);
  }
}

TEST_F(OcmTest, QuietOnNormalTraffic) {
  baseline::OcmDetector det(*chip_);
  det.enroll(sim::Scenario::baseline(910));
  const analysis::DetectionResult r =
      det.detect(sim::Scenario::baseline(911));
  EXPECT_FALSE(r.detected);
}

TEST_F(OcmTest, RequiresEnrollment) {
  const baseline::OcmDetector det(*chip_);
  EXPECT_FALSE(det.enrolled());
  EXPECT_THROW(det.detect(sim::Scenario::baseline(1)), std::logic_error);
}

// --------------------------------------------- refinement, end to end

TEST(RefineEndToEnd, EachTrojanLandsInItsOwnQuadrant) {
  sim::ChipSimulator chip(sim::SimTiming{}, layout::Floorplan::aes_testchip());
  analysis::Pipeline pipeline(chip);
  pipeline.enroll(sim::Scenario::baseline(7100));
  std::array<bool, 4> used{};
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const sim::Scenario sc = sim::Scenario::with_trojan(kind, 7200);
    const analysis::DetectionResult det = pipeline.detect(10, sc);
    ASSERT_TRUE(det.detected) << trojan::module_name(kind);
    const analysis::RefinedLocation ref =
        pipeline.refine_localization(10, det.peak_freq_hz, sc);
    EXPECT_FALSE(used[ref.best_quadrant])
        << "two Trojans refined into quadrant " << ref.best_quadrant;
    used[ref.best_quadrant] = true;
    // Position error under half a quadrant.
    const Point truth =
        chip.floorplan().module_centroid(trojan::module_name(kind));
    EXPECT_LT(distance(ref.estimate, truth), 40.0)
        << trojan::module_name(kind);
  }
}

}  // namespace
}  // namespace psa
