// fault_test.cpp — the fault-injection subsystem: seed-deterministic plans,
// dead-wire expansion, injector round-trips, the localized resistance-drift
// self-test fix, and the selftest-gated degraded pipeline.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "analysis/pipeline.hpp"
#include "fault/fault.hpp"
#include "fixtures.hpp"
#include "psa/selftest.hpp"
#include "sim/chip_simulator.hpp"

namespace psa {
namespace {

using tests::light_config;
using tests::make_chip;

fault::FaultPlanParams busy_params() {
  fault::FaultPlanParams p;
  p.stuck_open = 5;
  p.stuck_closed = 3;
  p.dead_rows = 1;
  p.dead_columns = 2;
  p.drift_cells = 4;
  p.resistance_scale = 1.35;
  p.opamp_gain_droop = 0.07;
  p.adc_full_scale_droop = 0.1;
  p.adc_stuck_low_bits = 0x3;
  p.noise_burst_scale = 1.8;
  p.extra_thermal_power_w = 0.2;
  return p;
}

// ------------------------------------------------------ plan determinism

TEST(FaultPlan, SameSeedSamePlan) {
  const fault::FaultPlan a = fault::make_plan(busy_params(), 77);
  const fault::FaultPlan b = fault::make_plan(busy_params(), 77);
  ASSERT_EQ(a.array.size(), b.array.size());
  for (std::size_t i = 0; i < a.array.size(); ++i) {
    EXPECT_EQ(a.array[i], b.array[i]) << "spec " << i;
  }
  EXPECT_EQ(a.resistance_scale, b.resistance_scale);
  EXPECT_EQ(a.measurement.noise_scale, b.measurement.noise_scale);
  EXPECT_EQ(a.measurement.temperature_offset_k,
            b.measurement.temperature_offset_k);
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  const fault::FaultPlan a = fault::make_plan(busy_params(), 1);
  const fault::FaultPlan b = fault::make_plan(busy_params(), 2);
  ASSERT_EQ(a.array.size(), b.array.size());  // counts are exact by contract
  bool any_diff = false;
  for (std::size_t i = 0; i < a.array.size(); ++i) {
    any_diff = any_diff || !(a.array[i] == b.array[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, CategoryStreamsAreIndependent) {
  // Adding faults of one kind must not move the cells of another kind.
  fault::FaultPlanParams only_drift;
  only_drift.drift_cells = 3;
  fault::FaultPlanParams mixed = only_drift;
  mixed.stuck_open = 7;
  mixed.stuck_closed = 2;
  const fault::FaultPlan a = fault::make_plan(only_drift, 99);
  const fault::FaultPlan b = fault::make_plan(mixed, 99);
  std::vector<fault::ArrayFaultSpec> drift_a;
  std::vector<fault::ArrayFaultSpec> drift_b;
  for (const auto& f : a.array) {
    if (f.kind == fault::ArrayFaultKind::kDrift) drift_a.push_back(f);
  }
  for (const auto& f : b.array) {
    if (f.kind == fault::ArrayFaultKind::kDrift) drift_b.push_back(f);
  }
  ASSERT_EQ(drift_a.size(), drift_b.size());
  for (std::size_t i = 0; i < drift_a.size(); ++i) {
    EXPECT_EQ(drift_a[i], drift_b[i]);
  }
}

TEST(FaultPlan, SameSeedIdenticalCampaignScores) {
  // The end-to-end guarantee: two pipelines built from the same (plan,
  // seeds) produce bit-identical scan scores.
  const fault::FaultPlan plan = fault::make_plan(busy_params(), 4242);
  std::array<double, 16> first{};
  std::array<double, 16> second{};
  for (std::array<double, 16>* out : {&first, &second}) {
    sim::ChipSimulator chip = make_chip();
    const fault::FaultInjector injector(plan);
    injector.arm(chip);
    analysis::Pipeline pipeline(chip, light_config());
    pipeline.configure_degraded(injector.array_faults());
    pipeline.enroll(sim::Scenario::baseline(321));
    *out = pipeline.scan_scores(
        sim::Scenario::with_trojan(trojan::TrojanKind::kT1AmCarrier, 654));
  }
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(first[k], second[k]) << "sensor " << k;
  }
}

// --------------------------------------------------- dead-wire expansion

TEST(FaultPlan, DeadRowExpandsToWholeWire) {
  fault::FaultPlan plan;
  plan.array.push_back({fault::ArrayFaultKind::kDeadRow, 7, 0});
  const sensor::ArrayFaults f = plan.array_faults();
  ASSERT_EQ(f.stuck_open.size(), sensor::kWires);
  for (std::size_t c = 0; c < sensor::kWires; ++c) {
    EXPECT_EQ(f.stuck_open[c].first, 7u);
    EXPECT_EQ(f.stuck_open[c].second, c);
  }
  EXPECT_TRUE(f.stuck_closed.empty());
}

TEST(FaultPlan, DeadColumnExpandsToWholeWire) {
  fault::FaultPlan plan;
  plan.array.push_back({fault::ArrayFaultKind::kDeadColumn, 0, 13});
  const sensor::ArrayFaults f = plan.array_faults();
  ASSERT_EQ(f.stuck_open.size(), sensor::kWires);
  for (std::size_t r = 0; r < sensor::kWires; ++r) {
    EXPECT_EQ(f.stuck_open[r].first, r);
    EXPECT_EQ(f.stuck_open[r].second, 13u);
  }
}

TEST(FaultPlan, DescribeSummarizes) {
  EXPECT_EQ(fault::FaultPlan{}.describe(), "pristine");
  const fault::FaultPlan plan = fault::make_plan(busy_params(), 5);
  const std::string s = plan.describe();
  EXPECT_NE(s.find("stuck-open"), std::string::npos);
  EXPECT_NE(s.find("drift"), std::string::npos);
  EXPECT_NE(s.find("noise"), std::string::npos);
}

// ------------------------------------------------ injector round-trips

TEST(FaultInjector, ArmDisarmRoundTrip) {
  sim::ChipSimulator chip = make_chip();
  EXPECT_FALSE(chip.measurement_faults().any());
  fault::FaultPlanParams p;
  p.noise_burst_scale = 2.0;
  p.opamp_gain_droop = 0.1;
  const fault::FaultInjector injector(fault::make_plan(p, 1));
  injector.arm(chip);
  EXPECT_TRUE(chip.measurement_faults().any());
  EXPECT_EQ(chip.measurement_faults().noise_scale, 2.0);
  EXPECT_EQ(chip.measurement_faults().frontend.opamp_gain_scale, 0.9);
  fault::FaultInjector::disarm(chip);
  EXPECT_FALSE(chip.measurement_faults().any());
}

TEST(FaultInjector, ApplyInjectsStuckSwitches) {
  fault::FaultPlan plan;
  plan.array.push_back({fault::ArrayFaultKind::kStuckOpen, 0, 0});
  plan.array.push_back({fault::ArrayFaultKind::kStuckClosed, 20, 20});
  const fault::FaultInjector injector(plan);
  sensor::SensorProgram p = sensor::CoilProgrammer::standard_sensor(0);
  const sensor::SensorProgram out = injector.apply(p);
  // (0,0) is commanded on by sensor 0's program but forced open; (20,20) is
  // idle but forced closed.
  EXPECT_TRUE(p.switches.commanded(0, 0));
  EXPECT_FALSE(out.switches.effective(0, 0));
  EXPECT_TRUE(out.switches.effective(20, 20));
  EXPECT_FALSE(out.extract().ok());
}

TEST(FaultInjector, MaskUnmaskRoundTrip) {
  sim::ChipSimulator chip = make_chip();
  analysis::Pipeline pipeline(chip, light_config());

  const std::vector<std::size_t> victims{3};
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/true));
  const analysis::DegradedModeReport broken =
      pipeline.configure_degraded(injector.array_faults());
  EXPECT_EQ(broken.masked_count(), 1u);
  EXPECT_TRUE(pipeline.sensor_masked(3));
  EXPECT_FALSE(pipeline.enrolled());  // re-enrollment required

  // Repairing the array (empty fault set) unmasks every sensor.
  const analysis::DegradedModeReport repaired =
      pipeline.configure_degraded(sensor::ArrayFaults{});
  EXPECT_EQ(repaired.masked_count(), 0u);
  EXPECT_EQ(repaired.substituted_count(), 0u);
  EXPECT_EQ(repaired.healthy_count(), 16u);
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_FALSE(pipeline.sensor_masked(k)) << "sensor " << k;
  }
}

// -------------------------------------- localized resistance-drift fix

TEST(SelfTestDrift, GlobalDriftStillFailsEveryPattern) {
  // Backward-compatible whole-array drift: no fault sites listed at all.
  sensor::ArrayFaults faults;
  faults.resistance_scale = 1.4;
  const sensor::SelfTestReport report = sensor::SelfTest().run(faults);
  EXPECT_TRUE(report.tampered);
  EXPECT_EQ(report.failures(), report.entries.size());
}

TEST(SelfTestDrift, ScaleOnlyAppliesToPathsCrossingAFaultSite) {
  // Regression: a stuck-open at sensor 5's corner used to drag the global
  // resistance_scale onto *every* sensor's path. Sensor 15's coil (rows
  // 24/25/35, cols 24/35) touches neither wire 8, so it must pass clean.
  sensor::ArrayFaults faults;
  faults.stuck_open.push_back({8, 8});
  faults.resistance_scale = 1.4;
  const sensor::SelfTestReport report = sensor::SelfTest().run(faults);
  EXPECT_TRUE(report.tampered);
  EXPECT_FALSE(report.entries[5].pass);  // broken coil (open)
  EXPECT_TRUE(report.entries[15].pass) << "drift leaked to a clean path";
}

TEST(SelfTestDrift, LocalDriftOnlyFlagsCrossingSensors) {
  // Drift at cell (8,8): H-wire 8 carries sensors 4-7, V-wire 8 carries
  // sensors 1,5,9,13. Everyone else's resistance stays in band.
  sensor::ArrayFaults faults;
  faults.drift_cells.push_back({8, 8});
  faults.resistance_scale = 1.4;
  const sensor::SelfTestReport report = sensor::SelfTest().run(faults);
  EXPECT_TRUE(report.tampered);
  for (const std::size_t k : {4u, 5u, 6u, 7u, 1u, 9u, 13u}) {
    EXPECT_FALSE(report.entries[k].pass) << "sensor " << k;
  }
  for (const std::size_t k : {0u, 2u, 3u, 10u, 15u}) {
    EXPECT_TRUE(report.entries[k].pass) << "sensor " << k;
  }
}

TEST(SelfTestDrift, SmallLocalDriftWithinToleranceStillPasses) {
  sensor::ArrayFaults faults;
  faults.drift_cells.push_back({8, 8});
  faults.resistance_scale = 1.05;  // inside the ±15 % band
  const sensor::SelfTestReport report = sensor::SelfTest().run(faults);
  EXPECT_FALSE(report.tampered);
}

// ------------------------------------------------- degraded pipeline

class DegradedDeadSensors : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegradedDeadSensors, MasksExactlyTheKilledSensors) {
  const std::size_t n_dead = GetParam();
  // Deterministic victims spread over the array: 0, 5, 10, 15, 3, 6, ...
  static constexpr std::size_t kVictims[8] = {0, 5, 10, 15, 3, 6, 9, 12};
  const std::vector<std::size_t> victims(kVictims, kVictims + n_dead);

  sim::ChipSimulator chip = make_chip();
  analysis::Pipeline pipeline(chip, light_config());
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/true));
  const analysis::DegradedModeReport report =
      pipeline.configure_degraded(injector.array_faults());

  EXPECT_TRUE(pipeline.degraded());
  EXPECT_EQ(report.masked_count(), n_dead);
  EXPECT_EQ(report.substituted_count(), 0u);
  for (const std::size_t k : victims) {
    EXPECT_TRUE(pipeline.sensor_masked(k)) << "sensor " << k;
  }

  pipeline.enroll(sim::Scenario::baseline(11));
  const std::array<double, 16> scores = pipeline.scan_scores(
      sim::Scenario::with_trojan(trojan::TrojanKind::kT2KeyLeak, 22));
  double live = 0.0;
  for (std::size_t k = 0; k < 16; ++k) {
    if (pipeline.sensor_masked(k)) {
      EXPECT_EQ(scores[k], 0.0) << "masked sensor " << k << " scored";
    } else {
      live += std::abs(scores[k]);
    }
  }
  EXPECT_GT(live, 0.0);

  // Masked sensors refuse detection outright; localization never picks one.
  EXPECT_THROW((void)pipeline.detect(victims[0], sim::Scenario::baseline(1)),
               std::runtime_error);
  const analysis::LocalizationResult loc = pipeline.localize(
      sim::Scenario::with_trojan(trojan::TrojanKind::kT2KeyLeak, 22));
  EXPECT_FALSE(pipeline.sensor_masked(loc.best_sensor));
}

INSTANTIATE_TEST_SUITE_P(DeadCounts, DegradedDeadSensors,
                         ::testing::Values(1, 4, 8));

TEST(DegradedPipeline, CornerKillSubstitutesInsteadOfMasking) {
  // Breaking only the standard coil's corner leaves the quadrant loops
  // formable: the pipeline reprograms instead of masking.
  sim::ChipSimulator chip = make_chip();
  analysis::Pipeline pipeline(chip, light_config());
  const std::vector<std::size_t> victims{5};
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/false));
  const analysis::DegradedModeReport report =
      pipeline.configure_degraded(injector.array_faults());
  EXPECT_EQ(report.masked_count(), 0u);
  EXPECT_EQ(report.substituted_count(), 1u);
  EXPECT_TRUE(report.substituted[5]);
  EXPECT_FALSE(pipeline.sensor_masked(5));
  // The substitute is a real coil: enrollment and scoring work through it
  // (no masked-sensor throw), and the measurement carries signal.
  pipeline.enroll(sim::Scenario::baseline(31));
  const analysis::DetectionResult det =
      pipeline.detect(5, sim::Scenario::baseline(32));
  EXPECT_TRUE(std::isfinite(det.score));
}

TEST(DegradedPipeline, NextHealthySensorSkipsMaskedAndWraps) {
  sim::ChipSimulator chip = make_chip();
  analysis::Pipeline pipeline(chip, light_config());
  const std::vector<std::size_t> victims{10, 11, 15};
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/true));
  pipeline.configure_degraded(injector.array_faults());
  EXPECT_EQ(pipeline.next_healthy_sensor(9), 9u);
  EXPECT_EQ(pipeline.next_healthy_sensor(10), 12u);
  EXPECT_EQ(pipeline.next_healthy_sensor(11), 12u);
  EXPECT_EQ(pipeline.next_healthy_sensor(15), 0u);  // wraps around
}

TEST(DegradedPipeline, AllSensorsMaskedThrows) {
  sim::ChipSimulator chip = make_chip();
  analysis::Pipeline pipeline(chip, light_config());
  std::vector<std::size_t> victims(16);
  for (std::size_t k = 0; k < 16; ++k) victims[k] = k;
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/true));
  const analysis::DegradedModeReport report =
      pipeline.configure_degraded(injector.array_faults());
  EXPECT_EQ(report.masked_count(), 16u);
  EXPECT_THROW((void)pipeline.next_healthy_sensor(0), std::runtime_error);
}

}  // namespace
}  // namespace psa
