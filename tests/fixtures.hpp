// fixtures.hpp — shared scaffolding for tests that build the simulated test
// chip and analysis pipeline. The chip-bearing suites (synthesis, fault,
// monitor, golden) previously each carried private copies of these helpers;
// they live here once so the configurations (and therefore the covered code
// paths) cannot silently drift apart.
//
// Seeding convention: kGoldenSeed anchors every scenario seed used by the
// committed golden vectors (tests/golden) and the chip's placement;
// kRngStreamBase anchors the small per-test Rng streams (stream n is
// Rng(kRngStreamBase + n)), so "which stream is this?" is greppable and
// renumbering is a one-line change.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "common/parallel.hpp"
#include "layout/floorplan.hpp"
#include "psa/programmer.hpp"
#include "sim/chip_simulator.hpp"

namespace psa::tests {

/// Seed anchoring the golden-vector scenarios and the chip placement.
inline constexpr std::uint64_t kGoldenSeed = 42;

/// Base for the small numbered Rng streams tests draw from
/// (Rng(kRngStreamBase + n) preserves the historical Rng(n) draws).
inline constexpr std::uint64_t kRngStreamBase = 0;

/// The standard simulated AES test chip every end-to-end suite measures.
inline sim::ChipSimulator make_chip() {
  return sim::ChipSimulator(sim::SimTiming{},
                            layout::Floorplan::aes_testchip(),
                            /*placement_seed=*/kGoldenSeed);
}

/// Light pipeline for fast end-to-end checks (structure, not SNR).
inline analysis::PipelineConfig light_config() {
  analysis::PipelineConfig cfg;
  cfg.cycles_per_trace = 256;
  cfg.enrollment_traces = 3;
  cfg.detection_averages = 1;
  return cfg;
}

/// SensorViews for the listed standard sensors.
inline std::vector<sim::SensorView> standard_views(
    const sim::ChipSimulator& chip, std::initializer_list<int> ks) {
  std::vector<sim::SensorView> views;
  for (int k : ks) {
    views.push_back(chip.view_from_program(
        sensor::CoilProgrammer::standard_sensor(static_cast<std::size_t>(k)),
        "sensor" + std::to_string(k)));
  }
  return views;
}

/// Byte-for-byte trace equality (the bit-identity contract's comparator).
inline bool same_samples(const sim::MeasuredTrace& a,
                         const sim::MeasuredTrace& b) {
  return a.samples.size() == b.samples.size() &&
         std::memcmp(a.samples.data(), b.samples.data(),
                     a.samples.size() * sizeof(double)) == 0;
}

/// Baseline plus all four Trojan scenarios at one seed.
inline std::vector<sim::Scenario> all_scenarios(std::uint64_t seed) {
  std::vector<sim::Scenario> scenarios;
  scenarios.push_back(sim::Scenario::baseline(seed));
  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT1AmCarrier, trojan::TrojanKind::kT2KeyLeak,
        trojan::TrojanKind::kT3CdmaLeak, trojan::TrojanKind::kT4DoS}) {
    scenarios.push_back(sim::Scenario::with_trojan(kind, seed));
  }
  return scenarios;
}

/// Restores the single-threaded pool on scope exit so one test's thread
/// configuration never leaks into the next.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_thread_count(1); }
};

}  // namespace psa::tests
