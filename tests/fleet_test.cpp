// fleet_test.cpp — the fleet engine's two load-bearing contracts:
//
//   * Verdict bit-exactness: a session's z-score stream is a pure function
//     of its ChipSpec — independent of fleet size, shard order, thread
//     count, scheduler arm (batched vs thread-per-chip), and cohort-cache
//     sharing — and reproduces both the hand-rolled single-chip monitor
//     loop and the committed golden scan vectors bit for bit.
//
//   * Isolation: a session that throws or persistently overruns the tick
//     deadline is quarantined with a latched event, and the rest of the
//     fleet's verdict streams (and therefore MTTD) are untouched — pinned
//     by comparing against a control fleet that never had the bad chip
//     misbehave.
//
// The satellite caches (ActivitySynthesis / FluxMapCache capacity + hit
// rate) are covered here too; the ServingQueue Retry-After derivation lives
// in serving_test.cpp with the rest of the queue suite.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "em/fluxmap_cache.hpp"
#include "fixtures.hpp"
#include "fleet/fleet.hpp"
#include "golden_common.hpp"
#include "obs/events.hpp"
#include "sim/activity_synthesis.hpp"

#ifndef PSA_GOLDEN_DIR
#error "PSA_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace psa {
namespace {

using fleet::ChipSpec;
using fleet::FleetConfig;
using fleet::FleetEngine;
using fleet::QuarantineCause;

/// Byte-for-byte equality of two verdict streams.
bool same_stream(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() && !a.empty() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// A small diverse fleet (two cohorts: clean + t1) on the light test config.
std::vector<ChipSpec> small_fleet(std::size_t n = 8, std::size_t cohort = 4) {
  return fleet::make_fleet_specs(n, cohort, tests::kGoldenSeed,
                                 tests::light_config());
}

TEST(FleetSession, MatchesHandRolledMonitorLoop) {
  tests::ThreadCountGuard guard;
  constexpr std::size_t kTicks = 6;

  ChipSpec spec;
  spec.label = "solo";
  spec.seed = tests::kGoldenSeed + 5;
  spec.placement_seed = tests::kGoldenSeed;
  spec.trojan = trojan::TrojanKind::kT3CdmaLeak;
  spec.activate_at = 2;
  spec.pipeline = tests::light_config();

  FleetEngine engine({spec}, FleetConfig{});
  ASSERT_EQ(engine.run_ticks(kTicks), kTicks);

  // The same loop psa_monitord runs, written out by hand: enroll on the
  // quiet scenario, then per tick reseed with seed + 7919 * (tick + 1),
  // fold one sentinel sweep into the sliding window, score, debounce.
  const sim::ChipSimulator chip(sim::SimTiming{},
                                layout::Floorplan::aes_testchip(),
                                spec.placement_seed);
  analysis::Pipeline pipeline(chip, spec.pipeline);
  pipeline.enroll(sim::Scenario::baseline(spec.seed));
  analysis::MonitorState state(spec.monitor);
  const std::size_t sentinel = spec.monitor.sentinel_sensor;

  std::vector<double> expected;
  for (std::size_t t = 0; t < kTicks; ++t) {
    sim::Scenario s =
        t >= spec.activate_at
            ? sim::Scenario::with_trojan(*spec.trojan, spec.seed)
            : sim::Scenario::baseline(spec.seed);
    s.seed = spec.seed + 7919 * (t + 1);
    const dsp::Spectrum& avg = state.push(pipeline.single_sweep(sentinel, s));
    expected.push_back(pipeline.score_spectrum(sentinel, avg).score);
  }

  EXPECT_TRUE(same_stream(engine.session(0).z_history(), expected));
  EXPECT_EQ(engine.session(0).ticks_done(), kTicks);
}

TEST(FleetSession, StreamingDetectorsAreAdditiveAndLabelled) {
  tests::ThreadCountGuard guard;
  constexpr std::size_t kTicks = 8;

  ChipSpec plain;
  plain.label = "plain";
  plain.seed = tests::kGoldenSeed + 9;
  plain.placement_seed = tests::kGoldenSeed;
  plain.trojan = trojan::TrojanKind::kT1AmCarrier;
  plain.activate_at = 2;
  plain.pipeline = tests::light_config();

  ChipSpec instrumented = plain;
  instrumented.streaming_detectors = {"zscore", "flatness"};

  const std::uint64_t seq0 = obs::EventLog::global().last_seq();
  FleetEngine control({plain}, FleetConfig{});
  ASSERT_EQ(control.run_ticks(kTicks), kTicks);
  FleetEngine engine({instrumented}, FleetConfig{});
  ASSERT_EQ(engine.run_ticks(kTicks), kTicks);

  // Streaming detectors are purely additive: the legacy verdict stream is
  // bit-identical to the uninstrumented control's.
  EXPECT_TRUE(same_stream(engine.session(0).z_history(),
                          control.session(0).z_history()));
  EXPECT_EQ(engine.session(0).alarms(), control.session(0).alarms());
  EXPECT_EQ(engine.session(0).mttd_ticks(), control.session(0).mttd_ticks());

  // The slots were calibrated at enroll and scored every tick.
  const auto& slots = engine.session(0).streaming();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0]->name, "zscore");
  EXPECT_EQ(slots[1]->name, "flatness");
  for (const auto& slot : slots) {
    EXPECT_TRUE(slot->detector->calibrated());
    EXPECT_TRUE(std::isfinite(slot->last_z)) << slot->name;
    // The t1 carrier is loud: both streaming detectors end the run latched
    // above their enrollment-calibrated thresholds.
    EXPECT_GT(slot->detector->threshold(), 0.0) << slot->name;
    EXPECT_GT(slot->last_z, slot->detector->threshold()) << slot->name;
    EXPECT_TRUE(slot->latched) << slot->name;
  }
  EXPECT_TRUE(control.session(0).streaming().empty());

  // Per-detector gauges live under the chip prefix (engine still alive).
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  std::size_t seen = 0;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "fleet.chip0.zscore.z" ||
        name == "fleet.chip0.zscore.alarmed" ||
        name == "fleet.chip0.flatness.z" ||
        name == "fleet.chip0.flatness.alarmed") {
      ++seen;
    }
  }
  EXPECT_EQ(seen, 4u);

  // Every fleet.alarm now carries a detector label; a legacy debounced
  // alarm (the variant with mttd_ticks) is always labelled "zscore", and
  // each streaming slot published exactly one labelled rising-edge event.
  std::size_t zscore_stream = 0;
  std::size_t flatness_stream = 0;
  for (const obs::Event& ev : obs::EventLog::global().since(seq0)) {
    if (ev.name != "fleet.alarm") continue;
    std::string detector;
    bool has_mttd = false;
    for (const obs::TraceArg& a : ev.args) {
      if (a.key == "detector") detector = a.text;
      if (a.key == "mttd_ticks") has_mttd = true;
    }
    EXPECT_FALSE(detector.empty()) << "fleet.alarm without detector label";
    if (has_mttd) {
      EXPECT_EQ(detector, "zscore");
    } else if (detector == "zscore") {
      ++zscore_stream;
    } else if (detector == "flatness") {
      ++flatness_stream;
    }
  }
  EXPECT_EQ(zscore_stream, 1u);
  EXPECT_EQ(flatness_stream, 1u);
}

TEST(FleetEngine, VerdictsInvariantAcrossSchedulerArmAndSharingAndThreads) {
  tests::ThreadCountGuard guard;
  constexpr std::size_t kTicks = 5;
  const std::vector<ChipSpec> specs = small_fleet();

  FleetConfig shared_cfg;
  shared_cfg.per_chip_metrics = false;
  FleetConfig private_cfg = shared_cfg;
  private_cfg.share_cohort_synthesis = false;

  // Reference: batched scheduler, shared cohort caches, one thread.
  set_thread_count(1);
  FleetEngine reference(specs, shared_cfg);
  ASSERT_EQ(reference.run_ticks(kTicks), kTicks);

  // Same scheduler on four threads.
  set_thread_count(4);
  FleetEngine threaded(specs, shared_cfg);
  ASSERT_EQ(threaded.run_ticks(kTicks), kTicks);

  // Sharing off (every session a private cache and its own shard).
  FleetEngine private_caches(specs, private_cfg);
  ASSERT_EQ(private_caches.run_ticks(kTicks), kTicks);

  // The naive baseline arm: one thread per chip.
  FleetEngine naive(specs, private_cfg);
  ASSERT_EQ(naive.run_thread_per_chip(kTicks), kTicks);

  for (std::size_t k = 0; k < specs.size(); ++k) {
    const std::vector<double>& ref = reference.session(k).z_history();
    EXPECT_TRUE(same_stream(ref, threaded.session(k).z_history()))
        << "thread-count divergence at chip " << k;
    EXPECT_TRUE(same_stream(ref, private_caches.session(k).z_history()))
        << "cache-sharing divergence at chip " << k;
    EXPECT_TRUE(same_stream(ref, naive.session(k).z_history()))
        << "scheduler-arm divergence at chip " << k;
  }
}

TEST(FleetEngine, ScanVerdictsMatchCommittedGoldens) {
  tests::ThreadCountGuard guard;

  // A fleet session configured exactly like the golden fixture must serve
  // the committed t3 scan bits — fleet membership cannot perturb a scan.
  ChipSpec spec;
  spec.label = "golden";
  spec.seed = tests::kGoldenSeed;
  spec.placement_seed = tests::kGoldenSeed;
  spec.pipeline = golden::golden_config();

  std::vector<ChipSpec> specs = small_fleet();
  specs.push_back(spec);
  specs.back().cohort = 99;  // its own cohort: nothing shares its schedule

  FleetEngine engine(specs, FleetConfig{});
  engine.enroll();
  ASSERT_EQ(engine.run_ticks(2), 2u);

  std::ifstream is(std::string(PSA_GOLDEN_DIR) + "/t3.golden",
                   std::ios::binary);
  ASSERT_TRUE(is) << "missing tests/golden/t3.golden";
  std::ostringstream os;
  os << is.rdbuf();
  const golden::GoldenRun committed = golden::parse(os.str());

  fleet::ChipSession& golden_chip = engine.session(specs.size() - 1);
  const std::array<double, 16> scores = golden_chip.pipeline().scan_scores(
      sim::Scenario::with_trojan(trojan::TrojanKind::kT3CdmaLeak,
                                 tests::kGoldenSeed));
  for (std::size_t k = 0; k < scores.size(); ++k) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(scores[k]),
              std::bit_cast<std::uint64_t>(committed.scores[k]))
        << "fleet-served scan diverged from golden at sensor " << k;
  }
}

TEST(FleetEngine, ThrowingSessionQuarantinedAndPeersUnperturbed) {
  tests::ThreadCountGuard guard;
  set_thread_count(4);
  constexpr std::size_t kTicks = 6;
  constexpr std::size_t kBad = 1;

  std::vector<ChipSpec> specs = small_fleet();
  std::vector<ChipSpec> control = specs;  // identical, nobody misbehaves
  specs[kBad].tick_hook = [](std::size_t tick) {
    if (tick == 2) throw std::runtime_error("simulated chip fault");
  };

  const std::uint64_t seq0 = obs::EventLog::global().last_seq();
  FleetConfig cfg;
  cfg.per_chip_metrics = false;
  FleetEngine engine(specs, cfg);
  ASSERT_EQ(engine.run_ticks(kTicks), kTicks);
  FleetEngine control_engine(control, cfg);
  ASSERT_EQ(control_engine.run_ticks(kTicks), kTicks);

  // The bad chip: quarantined at tick 2, latched, no further ticks.
  const fleet::ChipSession& bad = engine.session(kBad);
  EXPECT_TRUE(bad.quarantined());
  EXPECT_EQ(bad.quarantine_cause(), QuarantineCause::kException);
  EXPECT_NE(bad.quarantine_detail().find("simulated chip fault"),
            std::string::npos);
  EXPECT_EQ(bad.ticks_done(), 2u);  // ticks 0 and 1 completed

  // Exactly one latched quarantine event for it in the global log.
  std::size_t quarantine_events = 0;
  for (const obs::Event& ev : obs::EventLog::global().since(seq0)) {
    if (ev.name == "fleet.quarantined") ++quarantine_events;
  }
  EXPECT_EQ(quarantine_events, 1u);

  // Every peer's verdict stream is bit-identical to the control fleet's —
  // the quarantine neither stalled nor perturbed anyone else (fixed MTTD).
  for (std::size_t k = 0; k < specs.size(); ++k) {
    if (k == kBad) continue;
    EXPECT_TRUE(same_stream(engine.session(k).z_history(),
                            control_engine.session(k).z_history()))
        << "peer " << k << " perturbed by the quarantine";
    EXPECT_EQ(engine.session(k).mttd_ticks(),
              control_engine.session(k).mttd_ticks());
  }

  const fleet::FleetRollup roll = engine.rollup();
  EXPECT_EQ(roll.sessions, specs.size());
  EXPECT_EQ(roll.quarantined, 1u);
  EXPECT_EQ(roll.healthy, specs.size() - 1);
}

TEST(FleetEngine, DeadlineOverrunQuarantinesAfterConsecutiveStrikes) {
  tests::ThreadCountGuard guard;
  constexpr std::size_t kTicks = 4;
  constexpr std::size_t kSlow = 0;

  // The deadline must sit far above an honest tick even on a slow,
  // sanitizer-instrumented single-core runner (a light-config tick is
  // milliseconds natively, hundreds under TSan) and far below the hook's
  // sleep so the slow chip always overruns: 2 s vs a 4.5 s sleep.
  std::vector<ChipSpec> specs = small_fleet(4, 2);
  specs[kSlow].tick_hook = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(4500));
  };

  FleetConfig cfg;
  cfg.per_chip_metrics = false;
  cfg.tick_deadline_us = 2'000'000;
  cfg.deadline_strikes = 2;
  FleetEngine engine(specs, cfg);
  ASSERT_EQ(engine.run_ticks(kTicks), kTicks);

  const fleet::ChipSession& slow = engine.session(kSlow);
  EXPECT_TRUE(slow.quarantined());
  EXPECT_EQ(slow.quarantine_cause(), QuarantineCause::kDeadline);
  EXPECT_EQ(slow.ticks_done(), cfg.deadline_strikes);  // dropped after strike 2

  // The healthy rest of the fleet completed every tick.
  for (std::size_t k = 1; k < specs.size(); ++k) {
    EXPECT_FALSE(engine.session(k).quarantined());
    EXPECT_EQ(engine.session(k).ticks_done(), kTicks);
  }
}

TEST(FleetEngine, FaultWindowArmsAndClearsWithoutLastingEffect) {
  tests::ThreadCountGuard guard;
  constexpr std::size_t kTicks = 6;

  ChipSpec spec;
  spec.label = "faulty";
  spec.seed = tests::kGoldenSeed + 9;
  spec.pipeline = tests::light_config();
  ChipSpec control = spec;

  spec.fault_plan.seed = 7;
  spec.fault_plan.measurement.noise_scale = 2.0;
  spec.fault_plan.measurement.temperature_offset_k = 8.0;
  spec.fault_at = 2;
  spec.fault_clear_at = 4;

  FleetEngine faulty({spec}, FleetConfig{});
  ASSERT_EQ(faulty.run_ticks(kTicks), kTicks);
  FleetEngine clean({control}, FleetConfig{});
  ASSERT_EQ(clean.run_ticks(kTicks), kTicks);

  const std::vector<double>& zf = faulty.session(0).z_history();
  const std::vector<double>& zc = clean.session(0).z_history();
  ASSERT_EQ(zf.size(), kTicks);
  ASSERT_EQ(zc.size(), kTicks);

  // Before the window: identical. Inside [fault_at, fault_clear_at): the
  // measurement chain is perturbed. The *sweep* at the clear tick is clean
  // again; the sliding window flushes the faulted spectra a couple of ticks
  // later, after which the stream must re-converge bit-exactly.
  for (std::size_t t = 0; t < spec.fault_at; ++t) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(zf[t]),
              std::bit_cast<std::uint64_t>(zc[t]))
        << "pre-fault tick " << t;
  }
  bool window_differs = false;
  for (std::size_t t = spec.fault_at; t < spec.fault_clear_at; ++t) {
    window_differs |= zf[t] != zc[t];
  }
  EXPECT_TRUE(window_differs) << "fault window had no measurable effect";
  EXPECT_FALSE(faulty.session(0).quarantined());
}

TEST(FleetEngine, RollupAndJsonEndpointsReflectTheFleet) {
  tests::ThreadCountGuard guard;
  FleetEngine engine(small_fleet(), FleetConfig{});
  ASSERT_EQ(engine.run_ticks(5), 5u);

  // Cohort 0 is clean, cohort 1 carries t1 (the make_fleet_specs mix).
  const fleet::FleetRollup roll = engine.rollup();
  EXPECT_EQ(roll.sessions, 8u);
  EXPECT_EQ(roll.healthy, 8u);
  EXPECT_EQ(roll.infected, 4u);
  EXPECT_EQ(roll.ticks, 5u);
  EXPECT_GT(roll.chips_per_s, 0.0);

  const std::string health = engine.healthz_json();
  EXPECT_NE(health.find("\"status\""), std::string::npos);
  EXPECT_NE(health.find("\"sessions\":8"), std::string::npos);
  const std::string chips = engine.chips_json();
  EXPECT_NE(chips.find("\"chip0\""), std::string::npos);
  EXPECT_NE(chips.find("\"chip7\""), std::string::npos);
}

TEST(ActivitySynthesisCache, CapacityConfigurableAndHitRateTracked) {
  setenv("PSA_ACTIVITY_CACHE_CAP", "7", 1);
  EXPECT_EQ(sim::ActivitySynthesis::default_capacity(), 7u);
  unsetenv("PSA_ACTIVITY_CACHE_CAP");
  EXPECT_EQ(sim::ActivitySynthesis::default_capacity(), 16u);

  sim::ActivitySynthesis cache(4);
  const sim::SimTiming timing;
  for (std::uint64_t s = 0; s < 4; ++s) {
    cache.get_or_synthesize(sim::Scenario::baseline(100 + s), 64, timing);
  }
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.hit_rate(), 0.0);

  // Shrinking evicts down immediately; repeat lookups raise the hit rate.
  cache.set_capacity(2);
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.get_or_synthesize(sim::Scenario::baseline(103), 64, timing);  // hit
  const sim::ActivitySynthesis::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0 / 5.0);
}

TEST(FluxMapCacheCapacity, CapacityConfigurableAndHitRateTracked) {
  setenv("PSA_FLUXMAP_CACHE_CAP", "33", 1);
  EXPECT_EQ(em::FluxMapCache::default_capacity(), 33u);
  unsetenv("PSA_FLUXMAP_CACHE_CAP");
  EXPECT_EQ(em::FluxMapCache::default_capacity(), 256u);

  em::FluxMapCache cache(8);
  em::FluxMap::Params params;
  params.source_nx = 4;
  params.source_ny = 4;
  params.winding_raster = 8;
  const Rect die{{0.0, 0.0}, {100.0, 100.0}};
  for (double x = 10.0; x < 50.0; x += 10.0) {
    const Polyline coil{{x, 10.0}, {x + 20.0, 10.0}, {x + 20.0, 30.0},
                        {x, 30.0}, {x, 10.0}};
    cache.get_or_compute(coil, die, params);
  }
  EXPECT_EQ(cache.stats().entries, 4u);

  cache.set_capacity(1);
  EXPECT_EQ(cache.capacity(), 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  const Polyline last{{40.0, 10.0}, {60.0, 10.0}, {60.0, 30.0},
                      {40.0, 30.0}, {40.0, 10.0}};
  cache.get_or_compute(last, die, params);  // the surviving LRU entry: a hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0 / 5.0);
}

}  // namespace
}  // namespace psa
