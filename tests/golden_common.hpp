// golden_common.hpp — the golden-vector contract shared by the generator
// (tools/make_goldens) and the regression suite (tests/golden_test).
//
// A GoldenRun captures one Trojan scenario end to end: the 16-sensor scan
// score vector, the localization pick derived from it, and the detection
// spectrum measured at the winning sensor. Everything is serialized as the
// raw 64-bit pattern of each double (hex), so the committed references pin
// results to the BIT, not to a tolerance: any reordering of floating-point
// work anywhere in the synthesis → EM → AFE → DSP → detector chain shows up
// as a failed diff. The pipeline's bit-identity contract (index-addressed
// slots, seed-forked RNG) is what makes this reproducible at any thread
// count.
//
// The text format is deliberately deterministic — fixed field order, one
// hex word per double, LF line endings — so `make_goldens` regenerating an
// unchanged tree writes byte-identical files (the suite asserts this).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/localizer.hpp"
#include "analysis/pipeline.hpp"
#include "fixtures.hpp"
#include "trojan/trojan.hpp"

namespace psa::golden {

/// One scenario's pinned results.
struct GoldenRun {
  std::string name;  // "t1".."t4" (trojan::module_name)
  std::uint64_t seed = 0;
  std::array<double, 16> scores{};
  std::uint64_t best_sensor = 0;
  bool localized = false;
  double contrast_db = 0.0;
  std::vector<double> freq_hz;    // detection spectrum at best_sensor
  std::vector<double> magnitude;  // same length as freq_hz
};

/// The pipeline configuration the goldens are generated under. Light enough
/// for CI, heavy enough to exercise enrollment, the scan and localization.
inline analysis::PipelineConfig golden_config() {
  analysis::PipelineConfig cfg;
  cfg.cycles_per_trace = 256;
  cfg.enrollment_traces = 3;
  cfg.detection_averages = 2;
  return cfg;
}

/// Compute all four Trojan scenarios' golden runs at tests::kGoldenSeed.
/// One chip + one enrollment, exactly like the generator — callers at any
/// thread count must reproduce the committed bits.
inline std::vector<GoldenRun> compute_golden_runs() {
  const sim::ChipSimulator chip = tests::make_chip();
  analysis::Pipeline pipeline(chip, golden_config());
  pipeline.enroll(sim::Scenario::baseline(tests::kGoldenSeed));

  std::vector<GoldenRun> runs;
  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT1AmCarrier, trojan::TrojanKind::kT2KeyLeak,
        trojan::TrojanKind::kT3CdmaLeak, trojan::TrojanKind::kT4DoS}) {
    const sim::Scenario scenario =
        sim::Scenario::with_trojan(kind, tests::kGoldenSeed);
    GoldenRun run;
    run.name = trojan::module_name(kind);
    run.seed = tests::kGoldenSeed;
    run.scores = pipeline.scan_scores(scenario);
    const analysis::LocalizationResult loc =
        analysis::localize_from_scores(run.scores);
    run.best_sensor = loc.best_sensor;
    run.localized = loc.localized;
    run.contrast_db = loc.contrast_db;
    const dsp::Spectrum spec = pipeline.measure_spectrum(
        loc.best_sensor, scenario, /*seed_salt=*/loc.best_sensor + 1);
    run.freq_hz = spec.freq_hz;
    run.magnitude = spec.magnitude;
    runs.push_back(std::move(run));
  }
  return runs;
}

inline std::string hex_bits(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(v)));
  return buf;
}

inline double bits_hex(const std::string& s) {
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(std::stoull(s, nullptr, 16)));
}

inline std::string serialize(const GoldenRun& run) {
  std::ostringstream os;
  os << "psa-golden v1\n";
  os << "name " << run.name << "\n";
  os << "seed " << run.seed << "\n";
  os << "scores " << run.scores.size() << "\n";
  for (const double s : run.scores) os << hex_bits(s) << "\n";
  os << "best_sensor " << run.best_sensor << "\n";
  os << "localized " << (run.localized ? 1 : 0) << "\n";
  os << "contrast_db " << hex_bits(run.contrast_db) << "\n";
  os << "spectrum " << run.freq_hz.size() << "\n";
  for (std::size_t i = 0; i < run.freq_hz.size(); ++i) {
    os << hex_bits(run.freq_hz[i]) << " " << hex_bits(run.magnitude[i])
       << "\n";
  }
  return os.str();
}

inline GoldenRun parse(const std::string& text) {
  std::istringstream is(text);
  auto expect_key = [&](const char* key) {
    std::string tok;
    is >> tok;
    if (tok != key) {
      throw std::runtime_error("golden parse: expected '" + std::string(key) +
                               "', got '" + tok + "'");
    }
  };
  std::string magic;
  std::string version;
  is >> magic >> version;
  if (magic != "psa-golden" || version != "v1") {
    throw std::runtime_error("golden parse: bad header");
  }
  GoldenRun run;
  expect_key("name");
  is >> run.name;
  expect_key("seed");
  is >> run.seed;
  expect_key("scores");
  std::size_t n_scores = 0;
  is >> n_scores;
  if (n_scores != run.scores.size()) {
    throw std::runtime_error("golden parse: bad score count");
  }
  std::string word;
  for (double& s : run.scores) {
    is >> word;
    s = bits_hex(word);
  }
  expect_key("best_sensor");
  is >> run.best_sensor;
  expect_key("localized");
  int localized = 0;
  is >> localized;
  run.localized = localized != 0;
  expect_key("contrast_db");
  is >> word;
  run.contrast_db = bits_hex(word);
  expect_key("spectrum");
  std::size_t n_bins = 0;
  is >> n_bins;
  run.freq_hz.resize(n_bins);
  run.magnitude.resize(n_bins);
  for (std::size_t i = 0; i < n_bins; ++i) {
    std::string f;
    std::string m;
    is >> f >> m;
    run.freq_hz[i] = bits_hex(f);
    run.magnitude[i] = bits_hex(m);
  }
  if (!is) throw std::runtime_error("golden parse: truncated file");
  return run;
}

}  // namespace psa::golden
