// golden_common.hpp — the golden-vector contract shared by the generator
// (tools/make_goldens) and the regression suite (tests/golden_test).
//
// A GoldenRun captures one Trojan scenario end to end: the 16-sensor scan
// score vector, the localization pick derived from it, and the detection
// spectrum measured at the winning sensor. Everything is serialized as the
// raw 64-bit pattern of each double (hex), so the committed references pin
// results to the BIT, not to a tolerance: any reordering of floating-point
// work anywhere in the synthesis → EM → AFE → DSP → detector chain shows up
// as a failed diff. The pipeline's bit-identity contract (index-addressed
// slots, seed-forked RNG) is what makes this reproducible at any thread
// count.
//
// The text format is deliberately deterministic — fixed field order, one
// hex word per double, LF line endings — so `make_goldens` regenerating an
// unchanged tree writes byte-identical files (the suite asserts this).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/detector_bank.hpp"
#include "analysis/localizer.hpp"
#include "analysis/pipeline.hpp"
#include "fixtures.hpp"
#include "trojan/trojan.hpp"

namespace psa::golden {

/// One scenario's pinned results.
struct GoldenRun {
  std::string name;  // "t1".."t4" (trojan::module_name)
  std::uint64_t seed = 0;
  std::array<double, 16> scores{};
  std::uint64_t best_sensor = 0;
  bool localized = false;
  double contrast_db = 0.0;
  std::vector<double> freq_hz;    // detection spectrum at best_sensor
  std::vector<double> magnitude;  // same length as freq_hz
};

/// The pipeline configuration the goldens are generated under. Light enough
/// for CI, heavy enough to exercise enrollment, the scan and localization.
inline analysis::PipelineConfig golden_config() {
  analysis::PipelineConfig cfg;
  cfg.cycles_per_trace = 256;
  cfg.enrollment_traces = 3;
  cfg.detection_averages = 2;
  return cfg;
}

/// Compute all four Trojan scenarios' golden runs at tests::kGoldenSeed.
/// One chip + one enrollment, exactly like the generator — callers at any
/// thread count must reproduce the committed bits.
inline std::vector<GoldenRun> compute_golden_runs() {
  const sim::ChipSimulator chip = tests::make_chip();
  analysis::Pipeline pipeline(chip, golden_config());
  pipeline.enroll(sim::Scenario::baseline(tests::kGoldenSeed));

  std::vector<GoldenRun> runs;
  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT1AmCarrier, trojan::TrojanKind::kT2KeyLeak,
        trojan::TrojanKind::kT3CdmaLeak, trojan::TrojanKind::kT4DoS}) {
    const sim::Scenario scenario =
        sim::Scenario::with_trojan(kind, tests::kGoldenSeed);
    GoldenRun run;
    run.name = trojan::module_name(kind);
    run.seed = tests::kGoldenSeed;
    run.scores = pipeline.scan_scores(scenario);
    const analysis::LocalizationResult loc =
        analysis::localize_from_scores(run.scores);
    run.best_sensor = loc.best_sensor;
    run.localized = loc.localized;
    run.contrast_db = loc.contrast_db;
    const dsp::Spectrum spec = pipeline.measure_spectrum(
        loc.best_sensor, scenario, /*seed_salt=*/loc.best_sensor + 1);
    run.freq_hz = spec.freq_hz;
    run.magnitude = spec.magnitude;
    runs.push_back(std::move(run));
  }
  return runs;
}

inline std::string hex_bits(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(v)));
  return buf;
}

inline double bits_hex(const std::string& s) {
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(std::stoull(s, nullptr, 16)));
}

inline std::string serialize(const GoldenRun& run) {
  std::ostringstream os;
  os << "psa-golden v1\n";
  os << "name " << run.name << "\n";
  os << "seed " << run.seed << "\n";
  os << "scores " << run.scores.size() << "\n";
  for (const double s : run.scores) os << hex_bits(s) << "\n";
  os << "best_sensor " << run.best_sensor << "\n";
  os << "localized " << (run.localized ? 1 : 0) << "\n";
  os << "contrast_db " << hex_bits(run.contrast_db) << "\n";
  os << "spectrum " << run.freq_hz.size() << "\n";
  for (std::size_t i = 0; i < run.freq_hz.size(); ++i) {
    os << hex_bits(run.freq_hz[i]) << " " << hex_bits(run.magnitude[i])
       << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Detector-bank goldens: every Detector implementation's verdict on the four
// Trojan scenarios, pinned to the bit. One row per detector plus the fused
// ensemble; each row carries the calibrated threshold and, per scenario, the
// score bits, the detected flag and the peak tile. Format "psa-detector-
// golden v1", one file (detectors.golden) for the whole bank.

struct DetectorScenarioGolden {
  double score = 0.0;
  bool detected = false;
  std::uint64_t peak_tile = 0;
};

struct DetectorGoldenRow {
  std::string name;  // detector name, or "ensemble"
  double threshold = 0.0;
  std::vector<DetectorScenarioGolden> runs;  // one per scenario, in order
};

struct DetectorGoldens {
  std::uint64_t seed = 0;
  std::size_t scales = 0;
  std::vector<std::string> scenarios;  // "t1".."t4"
  std::vector<DetectorGoldenRow> rows;
};

/// Compute the detector-bank goldens at tests::kGoldenSeed: one chip, one
/// enrollment, a two-scale bank (die + sensors) over all registered
/// detectors, scanning t1..t4. Bit-reproducible at any thread count.
inline DetectorGoldens compute_detector_goldens() {
  const sim::ChipSimulator chip = tests::make_chip();
  analysis::Pipeline pipeline(chip, golden_config());
  const sim::Scenario normal = sim::Scenario::baseline(tests::kGoldenSeed);
  pipeline.enroll(normal);

  analysis::DetectorBank bank(pipeline, analysis::BankConfig{.scales = 2});
  bank.calibrate(normal);

  DetectorGoldens g;
  g.seed = tests::kGoldenSeed;
  g.scales = bank.config().scales;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    DetectorGoldenRow row;
    row.name = std::string(bank.detector(i).name());
    row.threshold = bank.detector(i).threshold();
    g.rows.push_back(std::move(row));
  }
  DetectorGoldenRow ensemble;
  ensemble.name = "ensemble";
  ensemble.threshold = 1.0;  // fused scores are threshold-normalized
  g.rows.push_back(std::move(ensemble));

  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT1AmCarrier, trojan::TrojanKind::kT2KeyLeak,
        trojan::TrojanKind::kT3CdmaLeak, trojan::TrojanKind::kT4DoS}) {
    g.scenarios.emplace_back(trojan::module_name(kind));
    const analysis::EnsembleVerdict v =
        bank.scan(sim::Scenario::with_trojan(kind, tests::kGoldenSeed));
    for (std::size_t i = 0; i < v.parts.size(); ++i) {
      DetectorScenarioGolden s;
      s.score = v.parts[i].verdict.score;
      s.detected = v.parts[i].verdict.detected;
      s.peak_tile = v.parts[i].verdict.peak_tile;
      g.rows.at(i).runs.push_back(s);
    }
    DetectorScenarioGolden fused;
    fused.score = v.score;
    fused.detected = v.detected;
    fused.peak_tile = 0;
    g.rows.back().runs.push_back(fused);
  }
  return g;
}

inline std::string serialize(const DetectorGoldens& g) {
  std::ostringstream os;
  os << "psa-detector-golden v1\n";
  os << "seed " << g.seed << "\n";
  os << "scales " << g.scales << "\n";
  os << "scenarios " << g.scenarios.size();
  for (const std::string& s : g.scenarios) os << " " << s;
  os << "\n";
  os << "detectors " << g.rows.size() << "\n";
  for (const DetectorGoldenRow& row : g.rows) {
    os << row.name << " " << hex_bits(row.threshold);
    for (const DetectorScenarioGolden& r : row.runs) {
      os << " " << hex_bits(r.score) << " " << (r.detected ? 1 : 0) << " "
         << r.peak_tile;
    }
    os << "\n";
  }
  return os.str();
}

inline DetectorGoldens parse_detectors(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::string version;
  is >> magic >> version;
  if (magic != "psa-detector-golden" || version != "v1") {
    throw std::runtime_error("detector golden parse: bad header");
  }
  auto expect_key = [&](const char* key) {
    std::string tok;
    is >> tok;
    if (tok != key) {
      throw std::runtime_error("detector golden parse: expected '" +
                               std::string(key) + "', got '" + tok + "'");
    }
  };
  DetectorGoldens g;
  expect_key("seed");
  is >> g.seed;
  expect_key("scales");
  is >> g.scales;
  expect_key("scenarios");
  std::size_t n_scen = 0;
  is >> n_scen;
  g.scenarios.resize(n_scen);
  for (std::string& s : g.scenarios) is >> s;
  expect_key("detectors");
  std::size_t n_rows = 0;
  is >> n_rows;
  std::string word;
  for (std::size_t r = 0; r < n_rows; ++r) {
    DetectorGoldenRow row;
    is >> row.name >> word;
    row.threshold = bits_hex(word);
    row.runs.resize(n_scen);
    for (DetectorScenarioGolden& run : row.runs) {
      int detected = 0;
      is >> word >> detected >> run.peak_tile;
      run.score = bits_hex(word);
      run.detected = detected != 0;
    }
    g.rows.push_back(std::move(row));
  }
  if (!is) throw std::runtime_error("detector golden parse: truncated file");
  return g;
}

inline GoldenRun parse(const std::string& text) {
  std::istringstream is(text);
  auto expect_key = [&](const char* key) {
    std::string tok;
    is >> tok;
    if (tok != key) {
      throw std::runtime_error("golden parse: expected '" + std::string(key) +
                               "', got '" + tok + "'");
    }
  };
  std::string magic;
  std::string version;
  is >> magic >> version;
  if (magic != "psa-golden" || version != "v1") {
    throw std::runtime_error("golden parse: bad header");
  }
  GoldenRun run;
  expect_key("name");
  is >> run.name;
  expect_key("seed");
  is >> run.seed;
  expect_key("scores");
  std::size_t n_scores = 0;
  is >> n_scores;
  if (n_scores != run.scores.size()) {
    throw std::runtime_error("golden parse: bad score count");
  }
  std::string word;
  for (double& s : run.scores) {
    is >> word;
    s = bits_hex(word);
  }
  expect_key("best_sensor");
  is >> run.best_sensor;
  expect_key("localized");
  int localized = 0;
  is >> localized;
  run.localized = localized != 0;
  expect_key("contrast_db");
  is >> word;
  run.contrast_db = bits_hex(word);
  expect_key("spectrum");
  std::size_t n_bins = 0;
  is >> n_bins;
  run.freq_hz.resize(n_bins);
  run.magnitude.resize(n_bins);
  for (std::size_t i = 0; i < n_bins; ++i) {
    std::string f;
    std::string m;
    is >> f >> m;
    run.freq_hz[i] = bits_hex(f);
    run.magnitude[i] = bits_hex(m);
  }
  if (!is) throw std::runtime_error("golden parse: truncated file");
  return run;
}

}  // namespace psa::golden
