// http_test.cpp — the telemetry HTTP server over real loopback sockets:
// ephemeral-port binding, the four standard endpoints, the query parser,
// 404/405 handling, concurrent clients, and a clean stop/restart cycle.
// The client half is a deliberately dumb blocking-socket GET so the test
// exercises the same byte stream curl and a Prometheus scraper would.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/http_exposition.hpp"
#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace psa {
namespace {

/// Blocking GET (or arbitrary request line) against 127.0.0.1:port;
/// returns the full response (headers + body), "" on connect failure.
std::string http_request(std::uint16_t port, const std::string& target,
                         const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& resp) {
  const std::size_t sep = resp.find("\r\n\r\n");
  return sep == std::string::npos ? "" : resp.substr(sep + 4);
}

// --------------------------------------------------------- query parsing

TEST(HttpParsing, UrlDecode) {
  EXPECT_EQ(net::url_decode("plain"), "plain");
  EXPECT_EQ(net::url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(net::url_decode("%2Fpath%3F"), "/path?");
  EXPECT_EQ(net::url_decode("bad%zz"), "bad%zz");  // malformed passes through
  EXPECT_EQ(net::url_decode("%4"), "%4");          // truncated escape
}

TEST(HttpParsing, ParseQuery) {
  const auto q = net::parse_query("since=12&max=5&flag&name=a%20b");
  EXPECT_EQ(q.at("since"), "12");
  EXPECT_EQ(q.at("max"), "5");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_EQ(q.at("name"), "a b");
  EXPECT_TRUE(net::parse_query("").empty());
}

// -------------------------------------------------------------- serving

TEST(HttpServer, ServesRegisteredHandlerOnEphemeralPort) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest& req) {
    EXPECT_EQ(req.method, "GET");
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  const std::string resp = http_request(server.port(), "/ping");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(resp), "pong\n");
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, UnknownPathIs404AndPostIs405) {
  net::HttpServer server;
  server.handle("/only", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_request(server.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "/only", "POST").find("405"),
            std::string::npos);
  server.stop();
}

TEST(HttpServer, QueryReachesHandlerDecoded) {
  net::HttpServer server;
  server.handle("/echo", [](const net::HttpRequest& req) {
    return net::HttpResponse{200, "text/plain",
                             req.query.at("k") + "|" + req.query.at("v")};
  });
  ASSERT_TRUE(server.start());
  EXPECT_EQ(body_of(http_request(server.port(), "/echo?k=a%20b&v=2")),
            "a b|2");
  server.stop();
}

TEST(HttpServer, StopThenRestartServesAgain) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t first_port = server.port();
  EXPECT_NE(http_request(first_port, "/ping").find("200"), std::string::npos);
  server.stop();
  ASSERT_TRUE(server.start());
  EXPECT_EQ(body_of(http_request(server.port(), "/ping")), "pong\n");
  server.stop();
}

TEST(HttpServer, ConcurrentClientsAllServed) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> bodies(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      bodies[static_cast<std::size_t>(i)] =
          body_of(http_request(server.port(), "/ping"));
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& b : bodies) EXPECT_EQ(b, "pong\n");
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

// ------------------------------------------------- telemetry endpoints

TEST(HttpTelemetry, MetricsHealthzEventsTimeseries) {
  obs::Registry::global().counter("httptest.hits").add(7);
  obs::EventLog events(64);
  events.emit(obs::Severity::kInfo, "httptest.start");
  events.emit(obs::Severity::kAlarm, "httptest.alarm", {{"z", 42.0}});
  obs::TimeSeriesSampler sampler;
  sampler.sample_once();

  net::HttpServer server;
  net::install_telemetry_endpoints(server, &events, &sampler,
                                   [] { return "\"traces\":3"; });
  ASSERT_TRUE(server.start());

  const std::string metrics = http_request(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("psa_httptest_hits_total 7"), std::string::npos)
      << body_of(metrics);

  const std::string health = body_of(http_request(server.port(), "/healthz"));
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"last_seq\":2"), std::string::npos) << health;
  EXPECT_NE(health.find("\"traces\":3"), std::string::npos);

  // since=1 skips the first event; the alarm comes back as one JSON line.
  const std::string tail =
      body_of(http_request(server.port(), "/events?since=1"));
  EXPECT_EQ(tail.find("httptest.start"), std::string::npos) << tail;
  EXPECT_NE(tail.find("\"name\":\"httptest.alarm\""), std::string::npos);
  EXPECT_NE(tail.find("\"severity\":\"alarm\""), std::string::npos);

  const std::string ts = body_of(http_request(server.port(), "/timeseries"));
  EXPECT_NE(ts.find("\"series\":"), std::string::npos);
  EXPECT_NE(ts.find("httptest.hits"), std::string::npos);
  server.stop();
}

TEST(HttpTelemetry, NullSamplerReports404OnTimeseries) {
  obs::EventLog events(8);
  net::HttpServer server;
  net::install_telemetry_endpoints(server, &events, nullptr);
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_request(server.port(), "/timeseries").find("404"),
            std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace psa
