// http_test.cpp — the telemetry HTTP server over real loopback sockets:
// ephemeral-port binding, the four standard endpoints, the query parser,
// 404/405 handling, concurrent clients, and a clean stop/restart cycle.
// The client half is a deliberately dumb blocking-socket GET so the test
// exercises the same byte stream curl and a Prometheus scraper would.
//
// The robustness half feeds the server what hostile or broken clients
// actually send — byte-by-byte trickle, split segments, garbage request
// lines, oversized headers, lying Content-Length, truncated bodies,
// pipelining, seeded random fuzz — and requires a 4xx or a closed socket
// every time, with the server still serving afterwards.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/http_exposition.hpp"
#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace psa {
namespace {

/// Blocking GET (or arbitrary request line) against 127.0.0.1:port;
/// returns the full response (headers + body), "" on connect failure.
std::string http_request(std::uint16_t port, const std::string& target,
                         const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& resp) {
  const std::size_t sep = resp.find("\r\n\r\n");
  return sep == std::string::npos ? "" : resp.substr(sep + 4);
}

/// Connect and ship arbitrary bytes (optionally in chunks with a pause, or
/// one byte at a time); `shut_wr` half-closes after sending so the server
/// sees EOF instead of waiting out its read timeout. Returns the full
/// response ("" = connect failed or the server closed without replying).
struct RawOptions {
  bool shut_wr = true;
  bool byte_by_byte = false;
  int pause_ms = 0;  // between chunks/bytes
};

std::string raw_request(std::uint16_t port,
                        const std::vector<std::string>& chunks,
                        const RawOptions& opt = {}) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  for (const std::string& chunk : chunks) {
    if (opt.byte_by_byte) {
      for (const char c : chunk) {
        (void)::send(fd, &c, 1, MSG_NOSIGNAL);
        if (opt.pause_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(opt.pause_ms));
        }
      }
    } else {
      (void)::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
      if (opt.pause_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opt.pause_ms));
      }
    }
  }
  if (opt.shut_wr) ::shutdown(fd, SHUT_WR);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

/// Reassemble a Transfer-Encoding: chunked body.
std::string decode_chunked(const std::string& body) {
  std::string out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eol = body.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const unsigned long len =
        std::strtoul(body.substr(pos, eol - pos).c_str(), nullptr, 16);
    if (len == 0) break;
    out += body.substr(eol + 2, len);
    pos = eol + 2 + len + 2;
  }
  return out;
}

// --------------------------------------------------------- query parsing

TEST(HttpParsing, UrlDecode) {
  EXPECT_EQ(net::url_decode("plain"), "plain");
  EXPECT_EQ(net::url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(net::url_decode("%2Fpath%3F"), "/path?");
  EXPECT_EQ(net::url_decode("bad%zz"), "bad%zz");  // malformed passes through
  EXPECT_EQ(net::url_decode("%4"), "%4");          // truncated escape
}

TEST(HttpParsing, ParseQuery) {
  const auto q = net::parse_query("since=12&max=5&flag&name=a%20b");
  EXPECT_EQ(q.at("since"), "12");
  EXPECT_EQ(q.at("max"), "5");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_EQ(q.at("name"), "a b");
  EXPECT_TRUE(net::parse_query("").empty());
}

// -------------------------------------------------------------- serving

TEST(HttpServer, ServesRegisteredHandlerOnEphemeralPort) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest& req) {
    EXPECT_EQ(req.method, "GET");
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  const std::string resp = http_request(server.port(), "/ping");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(resp), "pong\n");
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, UnknownPathIs404AndPostIs405) {
  net::HttpServer server;
  server.handle("/only", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_request(server.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "/only", "POST").find("405"),
            std::string::npos);
  server.stop();
}

TEST(HttpServer, QueryReachesHandlerDecoded) {
  net::HttpServer server;
  server.handle("/echo", [](const net::HttpRequest& req) {
    return net::HttpResponse{200, "text/plain",
                             req.query.at("k") + "|" + req.query.at("v")};
  });
  ASSERT_TRUE(server.start());
  EXPECT_EQ(body_of(http_request(server.port(), "/echo?k=a%20b&v=2")),
            "a b|2");
  server.stop();
}

TEST(HttpServer, StopThenRestartServesAgain) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t first_port = server.port();
  EXPECT_NE(http_request(first_port, "/ping").find("200"), std::string::npos);
  server.stop();
  ASSERT_TRUE(server.start());
  EXPECT_EQ(body_of(http_request(server.port(), "/ping")), "pong\n");
  server.stop();
}

TEST(HttpServer, ConcurrentClientsAllServed) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> bodies(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      bodies[static_cast<std::size_t>(i)] =
          body_of(http_request(server.port(), "/ping"));
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& b : bodies) EXPECT_EQ(b, "pong\n");
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

// ------------------------------------------------- telemetry endpoints

TEST(HttpTelemetry, MetricsHealthzEventsTimeseries) {
  obs::Registry::global().counter("httptest.hits").add(7);
  obs::EventLog events(64);
  events.emit(obs::Severity::kInfo, "httptest.start");
  events.emit(obs::Severity::kAlarm, "httptest.alarm", {{"z", 42.0}});
  obs::TimeSeriesSampler sampler;
  sampler.sample_once();

  net::HttpServer server;
  net::install_telemetry_endpoints(server, &events, &sampler,
                                   [] { return "\"traces\":3"; });
  ASSERT_TRUE(server.start());

  const std::string metrics = http_request(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("psa_httptest_hits_total 7"), std::string::npos)
      << body_of(metrics);

  const std::string health = body_of(http_request(server.port(), "/healthz"));
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"last_seq\":2"), std::string::npos) << health;
  EXPECT_NE(health.find("\"traces\":3"), std::string::npos);

  // since=1 skips the first event; the alarm comes back as one JSON line.
  const std::string tail =
      body_of(http_request(server.port(), "/events?since=1"));
  EXPECT_EQ(tail.find("httptest.start"), std::string::npos) << tail;
  EXPECT_NE(tail.find("\"name\":\"httptest.alarm\""), std::string::npos);
  EXPECT_NE(tail.find("\"severity\":\"alarm\""), std::string::npos);

  const std::string ts = body_of(http_request(server.port(), "/timeseries"));
  EXPECT_NE(ts.find("\"series\":"), std::string::npos);
  EXPECT_NE(ts.find("httptest.hits"), std::string::npos);
  server.stop();
}

TEST(HttpTelemetry, NullSamplerReports404OnTimeseries) {
  obs::EventLog events(8);
  net::HttpServer server;
  net::install_telemetry_endpoints(server, &events, nullptr);
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_request(server.port(), "/timeseries").find("404"),
            std::string::npos);
  server.stop();
}

// ------------------------------------------------------ POST and chunked

TEST(HttpPost, BodyReachesPostHandlerAndEchoesBack) {
  net::HttpServer server;
  server.handle_post("/echo", [](const net::HttpRequest& req) {
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.header("content-type"), "application/json");
    return net::HttpResponse{200, "text/plain", req.body};
  });
  ASSERT_TRUE(server.start());
  const std::string resp = raw_request(
      server.port(),
      {"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
       "Content-Length: 14\r\n\r\n{\"trojan\":\"t\"}"});
  EXPECT_NE(resp.find("200"), std::string::npos) << resp;
  EXPECT_EQ(body_of(resp), "{\"trojan\":\"t\"}");
  server.stop();
}

TEST(HttpPost, GetOnPostOnlyPathIs405AndViceVersa) {
  net::HttpServer server;
  server.handle_post("/ingest", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  server.handle("/view", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_request(server.port(), "/ingest").find("405"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "/view", "POST").find("405"),
            std::string::npos);
  server.stop();
}

TEST(HttpPost, BodySplitAcrossSegmentsIsReassembled) {
  net::HttpServer server;
  server.handle_post("/echo", [](const net::HttpRequest& req) {
    return net::HttpResponse{200, "text/plain", req.body};
  });
  ASSERT_TRUE(server.start());
  const std::string resp = raw_request(
      server.port(),
      {"POST /echo HTTP/1.1\r\nContent-Length: 10\r\n\r\n", "abcde",
       "fghij"},
      {.shut_wr = true, .byte_by_byte = false, .pause_ms = 5});
  EXPECT_EQ(body_of(resp), "abcdefghij") << resp;
  server.stop();
}

TEST(HttpPost, ChunkedResponseDecodesToHandlerBody) {
  std::string big(20000, 'x');
  big += "END";
  net::HttpServer server;
  server.handle("/big", [&big](const net::HttpRequest&) {
    net::HttpResponse resp{200, "text/plain", big};
    resp.chunked = true;
    return resp;
  });
  ASSERT_TRUE(server.start());
  const std::string resp = http_request(server.port(), "/big");
  EXPECT_NE(resp.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(resp.find("Content-Length:"), std::string::npos);
  EXPECT_EQ(decode_chunked(body_of(resp)), big);
  server.stop();
}

TEST(HttpPost, HeadOmitsBody) {
  net::HttpServer server;
  server.handle("/ping", [](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(server.start());
  const std::string resp =
      raw_request(server.port(), {"HEAD /ping HTTP/1.1\r\nHost: x\r\n\r\n"});
  EXPECT_NE(resp.find("200"), std::string::npos);
  EXPECT_EQ(body_of(resp), "");
  server.stop();
}

// ---------------------------------------------------- parser robustness

/// A server with one GET and one POST route, used by every robustness case.
class HttpRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.handle("/ping", [](const net::HttpRequest&) {
      return net::HttpResponse{200, "text/plain", "pong\n"};
    });
    server_.handle_post("/echo", [](const net::HttpRequest& req) {
      return net::HttpResponse{200, "text/plain", req.body};
    });
  }

  void start(net::HttpServer::Options options = {}) {
    ASSERT_TRUE(server_.start(options));
  }

  /// The invariant every hostile input must leave intact.
  void expect_still_serving() {
    EXPECT_EQ(body_of(http_request(server_.port(), "/ping")), "pong\n");
  }

  net::HttpServer server_;
};

// Regression for the seed implementation's single-recv parse: a request
// arriving one byte per TCP segment must still be served.
TEST_F(HttpRobustness, ByteByByteRequestStillParses) {
  start();
  const std::string resp =
      raw_request(server_.port(), {"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"},
                  {.shut_wr = true, .byte_by_byte = true, .pause_ms = 0});
  EXPECT_NE(resp.find("200"), std::string::npos) << resp;
  EXPECT_EQ(body_of(resp), "pong\n");
  expect_still_serving();
}

// The \r\n\r\n terminator split exactly across two reads.
TEST_F(HttpRobustness, TerminatorStraddlingSegmentsParses) {
  start();
  const std::string full = "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
  for (std::size_t split = full.size() - 4; split < full.size(); ++split) {
    const std::string resp = raw_request(
        server_.port(), {full.substr(0, split), full.substr(split)},
        {.shut_wr = true, .byte_by_byte = false, .pause_ms = 5});
    EXPECT_EQ(body_of(resp), "pong\n") << "split at " << split;
  }
}

TEST_F(HttpRobustness, MalformedRequestLinesGet400) {
  start();
  const char* malformed[] = {
      "GARBAGE\r\n\r\n",
      "GET\r\n\r\n",
      "GET /ping\r\n\r\n",                  // missing version
      "GET ping HTTP/1.1\r\n\r\n",          // target without leading slash
      "GET /ping FTP/9.9\r\n\r\n",          // wrong protocol
      " \r\n\r\n",
      "\r\n\r\n",
  };
  for (const char* req : malformed) {
    const std::string resp = raw_request(server_.port(), {req});
    EXPECT_NE(resp.find("400"), std::string::npos) << "for: " << req;
  }
  expect_still_serving();
}

TEST_F(HttpRobustness, HeaderLineWithoutColonGets400) {
  start();
  const std::string resp = raw_request(
      server_.port(), {"GET /ping HTTP/1.1\r\nthis is not a header\r\n\r\n"});
  EXPECT_NE(resp.find("400"), std::string::npos) << resp;
  expect_still_serving();
}

TEST_F(HttpRobustness, OversizedHeaderBlockGets431) {
  net::HttpServer::Options options;
  options.max_header_bytes = 512;
  start(options);
  const std::string huge(4096, 'h');
  const std::string resp = raw_request(
      server_.port(), {"GET /ping HTTP/1.1\r\nX-Pad: " + huge + "\r\n\r\n"});
  EXPECT_NE(resp.find("431"), std::string::npos) << resp.substr(0, 64);
  expect_still_serving();
}

TEST_F(HttpRobustness, BadContentLengthGets400) {
  start();
  for (const char* bad : {"abc", "-5", "1e3", "18446744073709551616"}) {
    const std::string resp = raw_request(
        server_.port(), {std::string("POST /echo HTTP/1.1\r\nContent-Length: ") +
                             bad + "\r\n\r\nxxxxx"});
    EXPECT_NE(resp.find("400"), std::string::npos) << "for: " << bad;
  }
  expect_still_serving();
}

TEST_F(HttpRobustness, MissingContentLengthOnPostGets411) {
  start();
  const std::string resp =
      raw_request(server_.port(), {"POST /echo HTTP/1.1\r\nHost: x\r\n\r\n"});
  EXPECT_NE(resp.find("411"), std::string::npos) << resp;
  expect_still_serving();
}

TEST_F(HttpRobustness, OverlargeBodyGets413WithoutReadingIt) {
  net::HttpServer::Options options;
  options.max_body_bytes = 1024;
  start(options);
  // Announce 1 MiB but send none of it: the 413 must come back immediately,
  // not after a timeout spent draining a body the server will discard.
  const std::string resp = raw_request(
      server_.port(),
      {"POST /echo HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n"},
      {.shut_wr = false, .byte_by_byte = false, .pause_ms = 0});
  EXPECT_NE(resp.find("413"), std::string::npos) << resp;
  expect_still_serving();
}

TEST_F(HttpRobustness, TruncatedBodyWithEofClosesWithoutResponse) {
  start();
  const std::string resp = raw_request(
      server_.port(),
      {"POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly ten b"});
  EXPECT_EQ(resp, "");  // can't trust a half body: close, no reply
  expect_still_serving();
}

TEST_F(HttpRobustness, StalledBodyGets408AfterTimeout) {
  net::HttpServer::Options options;
  options.read_timeout_ms = 200;
  start(options);
  // Keep the socket open, never send the promised body.
  const std::string resp = raw_request(
      server_.port(),
      {"POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\n"},
      {.shut_wr = false, .byte_by_byte = false, .pause_ms = 0});
  EXPECT_NE(resp.find("408"), std::string::npos) << resp;
  expect_still_serving();
}

TEST_F(HttpRobustness, PipelinedRequestsServeFirstThenClose) {
  start();
  const std::string one = "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::string resp = raw_request(server_.port(), {one + one});
  // Connection: close semantics — exactly one response, then the socket
  // shuts; the pipelined second request is dropped, never half-parsed.
  std::size_t statuses = 0;
  for (std::size_t at = resp.find("HTTP/1.1"); at != std::string::npos;
       at = resp.find("HTTP/1.1", at + 1)) {
    ++statuses;
  }
  EXPECT_EQ(statuses, 1u) << resp;
  EXPECT_EQ(body_of(resp), "pong\n");
  expect_still_serving();
}

TEST_F(HttpRobustness, PipelinedBytesAfterPostBodyAreIgnored) {
  start();
  const std::string resp = raw_request(
      server_.port(), {"POST /echo HTTP/1.1\r\nContent-Length: 3\r\n\r\n"
                       "abcGET /ping HTTP/1.1\r\n\r\n"});
  EXPECT_EQ(body_of(resp), "abc") << resp;  // body is exactly 3 bytes
  expect_still_serving();
}

// Seeded random fuzz: whatever bytes arrive, the server answers 4xx or
// closes, never crashes, and keeps serving. Deterministic (fixed seed) so
// a failure reproduces.
TEST_F(HttpRobustness, RandomGarbageNeverWedgesTheServer) {
  net::HttpServer::Options options;
  options.read_timeout_ms = 1000;
  start(options);
  std::mt19937 rng(20260808u);
  // Bias toward protocol-ish bytes so the fuzz reaches deeper parse paths
  // than pure binary noise would.
  const std::string alphabet =
      "GET POST HEAD /ping HTTP/1.1\r\n\r\nContent-Length: 0123456789 "
      "Host:\t\\\"%\x01\x7f";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<std::size_t> len(1, 300);
  for (int round = 0; round < 100; ++round) {
    std::string garbage;
    const std::size_t n = len(rng);
    garbage.reserve(n);
    for (std::size_t i = 0; i < n; ++i) garbage += alphabet[pick(rng)];
    (void)raw_request(server_.port(), {garbage});
  }
  expect_still_serving();
}

}  // namespace
}  // namespace psa
