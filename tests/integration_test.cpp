// End-to-end reproduction checks: the full golden-model-free cross-domain
// pipeline against all four Trojans, plus the runtime monitor's MTTD.
// These are the paper's headline claims (Section VI-D).
#include <gtest/gtest.h>

#include "analysis/monitor.hpp"
#include "analysis/pipeline.hpp"
#include "dsp/stats.hpp"
#include "psa/programmer.hpp"

namespace psa::analysis {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chip_ = new sim::ChipSimulator(sim::SimTiming{},
                                   layout::Floorplan::aes_testchip());
    pipeline_ = new Pipeline(*chip_);
    pipeline_->enroll(sim::Scenario::baseline(1000));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete chip_;
    pipeline_ = nullptr;
    chip_ = nullptr;
  }
  static sim::ChipSimulator* chip_;
  static Pipeline* pipeline_;
};

sim::ChipSimulator* IntegrationTest::chip_ = nullptr;
Pipeline* IntegrationTest::pipeline_ = nullptr;

TEST_F(IntegrationTest, NoFalseAlarmOnCleanTraffic) {
  const DetectionResult r =
      pipeline_->detect(10, sim::Scenario::baseline(555));
  EXPECT_FALSE(r.detected);
}

TEST_F(IntegrationTest, NoFalseAlarmAcrossAllSensors) {
  for (std::size_t s = 0; s < 16; ++s) {
    const DetectionResult r =
        pipeline_->detect(s, sim::Scenario::baseline(777 + s));
    EXPECT_FALSE(r.detected) << "sensor " << s;
  }
}

TEST_F(IntegrationTest, AllFourTrojansDetected) {
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const DetectionResult r = pipeline_->detect(
        10, sim::Scenario::with_trojan(kind, 42));
    EXPECT_TRUE(r.detected) << trojan::module_name(kind);
    EXPECT_GT(r.score, 100.0) << trojan::module_name(kind);
  }
}

TEST_F(IntegrationTest, SmallTrojanT3StillDetected) {
  // Table I: prior EM methods miss T3 (329 gates, 1.14 %); PSA does not.
  const DetectionResult r = pipeline_->detect(
      10, sim::Scenario::with_trojan(trojan::TrojanKind::kT3CdmaLeak, 43));
  EXPECT_TRUE(r.detected);
}

TEST_F(IntegrationTest, AllFourTrojansLocalizedToSensor10) {
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const LocalizationResult r =
        pipeline_->localize(sim::Scenario::with_trojan(kind, 44));
    EXPECT_TRUE(r.localized) << trojan::module_name(kind);
    EXPECT_EQ(r.best_sensor, 10u) << trojan::module_name(kind);
    EXPECT_GT(r.contrast_db, 10.0) << trojan::module_name(kind);
  }
}

TEST_F(IntegrationTest, FullCrossDomainAnalysisIdentifiesEveryTrojan) {
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const AnalysisReport rep =
        pipeline_->analyze(sim::Scenario::with_trojan(kind, 45));
    EXPECT_TRUE(rep.detection.detected) << trojan::module_name(kind);
    EXPECT_EQ(rep.localization.best_sensor, 10u) << trojan::module_name(kind);
    ASSERT_TRUE(rep.identification.kind.has_value())
        << trojan::module_name(kind);
    EXPECT_EQ(*rep.identification.kind, kind)
        << "expected " << trojan::module_name(kind) << " got "
        << trojan::module_name(*rep.identification.kind) << " — "
        << rep.identification.rationale;
  }
}

TEST_F(IntegrationTest, SidebandFrequenciesMatchFig4) {
  // Fig. 4: prominent components are sidebands of clock harmonics
  // (48 / 84 MHz on silicon; our chain also surfaces the 15 MHz beat line).
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const DetectionResult r = pipeline_->detect(
        10, sim::Scenario::with_trojan(kind, 46));
    ASSERT_TRUE(r.detected);
    const double f = r.peak_freq_hz;
    const bool plausible = std::fabs(f - 15.0e6) < 2.0e6 ||
                           std::fabs(f - 18.0e6) < 2.0e6 ||
                           std::fabs(f - 48.0e6) < 2.0e6 ||
                           std::fabs(f - 51.0e6) < 2.0e6 ||
                           std::fabs(f - 81.0e6) < 2.0e6 ||
                           std::fabs(f - 84.0e6) < 2.0e6 ||
                           std::fabs(f - 114.0e6) < 2.0e6;
    EXPECT_TRUE(plausible) << trojan::module_name(kind) << " peak at " << f;
  }
}

TEST_F(IntegrationTest, MttdUnderTenMilliseconds) {
  // Section VI-D: fewer than ten traces, MTTD < 10 ms.
  const RuntimeMonitor monitor(*pipeline_);
  for (trojan::TrojanKind kind : trojan::all_trojan_kinds()) {
    const MonitorOutcome out = monitor.run(
        sim::Scenario::baseline(900), sim::Scenario::with_trojan(kind, 900),
        /*activation_trace=*/4);
    EXPECT_TRUE(out.alarmed) << trojan::module_name(kind);
    EXPECT_LT(out.traces_after_activation, 10u) << trojan::module_name(kind);
    EXPECT_LT(out.mttd_s, 10.0e-3) << trojan::module_name(kind);
  }
}

TEST_F(IntegrationTest, MonitorSilentWithoutActivation) {
  MonitorConfig cfg;
  cfg.max_traces = 16;
  const RuntimeMonitor monitor(*pipeline_, cfg);
  // Activation far beyond the run: the quiet scenario streams throughout.
  const MonitorOutcome out = monitor.run(
      sim::Scenario::baseline(901),
      sim::Scenario::with_trojan(trojan::TrojanKind::kT4DoS, 901),
      /*activation_trace=*/1000);
  EXPECT_FALSE(out.alarmed);
}

TEST_F(IntegrationTest, GoldenModelFreeEnrollmentOnInfectedChip) {
  // Enrollment happened on the *infected* device (all four Trojans present,
  // dormant trigger logic ticking) — there is no Trojan-free golden chip in
  // this flow — and the pipeline still detects payload activation.
  const DetectionResult r = pipeline_->detect(
      10, sim::Scenario::with_trojan(trojan::TrojanKind::kT1AmCarrier, 47));
  EXPECT_TRUE(r.detected);
}

TEST_F(IntegrationTest, ZeroSpanTraceShapesDiffer) {
  // Fig. 5: the same frequency component carries visibly different
  // time-domain envelopes per Trojan.
  const auto env_of = [&](trojan::TrojanKind kind) {
    const sim::Scenario sc = sim::Scenario::with_trojan(kind, 48);
    const DetectionResult d = pipeline_->detect(10, sc);
    return pipeline_->zero_span_trace(10, d.peak_freq_hz, sc);
  };
  const auto t1 = env_of(trojan::TrojanKind::kT1AmCarrier);
  const auto t4 = env_of(trojan::TrojanKind::kT4DoS);
  // T1's AM envelope swings; T4's stays flat.
  const double cv1 = dsp::stddev(t1.magnitude) / dsp::mean(t1.magnitude);
  const double cv4 = dsp::stddev(t4.magnitude) / dsp::mean(t4.magnitude);
  EXPECT_GT(cv1, 3.0 * cv4);
}

TEST_F(IntegrationTest, ReportAccountsTraceBudget) {
  const AnalysisReport rep = pipeline_->analyze(
      sim::Scenario::with_trojan(trojan::TrojanKind::kT2KeyLeak, 49));
  // 16-sensor scan + confirmation + zero-span.
  EXPECT_GE(rep.traces_consumed, 16u);
  EXPECT_LE(rep.traces_consumed, 16u * 5u + 5u + 1u);
}

}  // namespace
}  // namespace psa::analysis
