// Floorplan and netlist: Table II budgets, sensor tiling overlap, density
// rasterization, deterministic placement.
#include <gtest/gtest.h>

#include "layout/floorplan.hpp"
#include "layout/netlist.hpp"

namespace psa::layout {
namespace {

TEST(TableII, BudgetMatchesPaperExactly) {
  EXPECT_EQ(TableIIBudget::kOverall, 28806u);
  EXPECT_EQ(TableIIBudget::kT1, 1881u);
  EXPECT_EQ(TableIIBudget::kT2, 2132u);
  EXPECT_EQ(TableIIBudget::kT3, 329u);
  EXPECT_EQ(TableIIBudget::kT4, 2181u);
  EXPECT_EQ(TableIIBudget::kMainCircuit, 22283u);
}

TEST(Floorplan, TestChipTotalsMatchTableII) {
  const Floorplan fp = Floorplan::aes_testchip();
  EXPECT_EQ(fp.total_cells(true), TableIIBudget::kOverall);
  EXPECT_EQ(fp.total_cells(false), TableIIBudget::kMainCircuit);
  EXPECT_EQ(fp.find("t1")->cell_count, TableIIBudget::kT1);
  EXPECT_EQ(fp.find("t2")->cell_count, TableIIBudget::kT2);
  EXPECT_EQ(fp.find("t3")->cell_count, TableIIBudget::kT3);
  EXPECT_EQ(fp.find("t4")->cell_count, TableIIBudget::kT4);
}

TEST(Floorplan, TrojanPercentagesMatchTableII) {
  const Floorplan fp = Floorplan::aes_testchip();
  const double overall = static_cast<double>(fp.total_cells(true));
  EXPECT_NEAR(100.0 * TableIIBudget::kT1 / overall, 6.52, 0.02);
  EXPECT_NEAR(100.0 * TableIIBudget::kT2 / overall, 7.40, 0.02);
  EXPECT_NEAR(100.0 * TableIIBudget::kT3 / overall, 1.14, 0.02);
  EXPECT_NEAR(100.0 * TableIIBudget::kT4 / overall, 7.57, 0.02);
}

TEST(Floorplan, AllTrojansInsideSensor10Region) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Rect s10 = standard_sensor_region(10);
  for (const char* name : {"t1", "t2", "t3", "t4"}) {
    const Module* m = fp.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_TRUE(m->is_trojan);
    for (const Rect& r : m->regions) {
      EXPECT_GE(overlap_fraction(r, s10), 0.99)
          << name << " must sit under sensor 10";
    }
  }
}

TEST(Floorplan, Sensor0CornerFreeOfLogic) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Rect s0 = standard_sensor_region(0);
  for (const Module& m : fp.modules()) {
    if (m.name == "io_ring") continue;  // perimeter pads are everywhere
    for (const Rect& r : m.regions) {
      EXPECT_LT(overlap_fraction(r, s0), 0.01)
          << m.name << " intrudes into the sensor-0 control corner";
    }
  }
}

TEST(Floorplan, FindAndCentroid) {
  const Floorplan fp = Floorplan::aes_testchip();
  EXPECT_EQ(fp.find("nope"), nullptr);
  const Point c = fp.module_centroid("t1");
  EXPECT_NEAR(c.x, 385.0, 1e-9);
  EXPECT_NEAR(c.y, 385.0, 1e-9);
  EXPECT_THROW(fp.module_centroid("nope"), std::invalid_argument);
}

TEST(Floorplan, DensityConservesCells) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Grid2D d = fp.density("aes_sbox", 36, 36);
  EXPECT_NEAR(d.total(), 9000.0, 1.0);
}

TEST(Floorplan, MultiRegionDensitySplitsByArea) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Grid2D d = fp.density("io_ring", 36, 36);
  EXPECT_NEAR(d.total(), static_cast<double>(fp.find("io_ring")->cell_count),
              1.0);
}

TEST(Floorplan, RejectsDegenerateModules) {
  Floorplan fp = Floorplan::aes_testchip();
  EXPECT_THROW(fp.add_module({"bad", {}, 1, false}), std::invalid_argument);
  EXPECT_THROW(
      fp.add_module({"bad", {Rect{{1, 1}, {1, 2}}}, 1, false}),
      std::invalid_argument);
}

TEST(SensorRegions, TilingGeometry) {
  for (std::size_t k = 0; k < kNumStandardSensors; ++k) {
    const Rect r = standard_sensor_region(k);
    EXPECT_DOUBLE_EQ(r.width(), 192.0);
    EXPECT_DOUBLE_EQ(r.height(), 192.0);
    EXPECT_GE(r.lo.x, 0.0);
    EXPECT_LE(r.hi.x, kDieSideUm);
  }
  EXPECT_THROW(standard_sensor_region(16), std::out_of_range);
}

TEST(SensorRegions, AdjacentOverlapIsOneThird) {
  // The paper: "Each sensor shares 33% of its area with adjacent sensors".
  const Rect a = standard_sensor_region(5);
  const Rect right = standard_sensor_region(6);
  const Rect up = standard_sensor_region(9);
  EXPECT_NEAR(overlap_fraction(a, right), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(overlap_fraction(a, up), 1.0 / 3.0, 1e-9);
}

TEST(SensorRegions, Sensor10CentreRight) {
  const Rect r = standard_sensor_region(10);
  EXPECT_EQ(r.lo, (Point{256.0, 256.0}));
  EXPECT_EQ(r.hi, (Point{448.0, 448.0}));
}

TEST(WireCoords, LatticeGeometry) {
  EXPECT_DOUBLE_EQ(wire_coord_um(0), 8.0);
  EXPECT_DOUBLE_EQ(wire_coord_um(35), 568.0);
  EXPECT_DOUBLE_EQ(wire_coord_um(1) - wire_coord_um(0), kWirePitchUm);
}

// ------------------------------------------------------------------ netlist

TEST(Netlist, PlacesExactBudget) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Netlist nl = Netlist::place(fp, 1);
  EXPECT_EQ(nl.size(), TableIIBudget::kOverall);
  EXPECT_EQ(nl.count_of("t3"), TableIIBudget::kT3);
  EXPECT_EQ(nl.count_of("aes_sbox"), 9000u);
  EXPECT_EQ(nl.count_of("nope"), 0u);
}

TEST(Netlist, CellsInsideTheirModuleRegions) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Netlist nl = Netlist::place(fp, 2);
  for (const auto& cell : nl.cells_of("t1")) {
    bool inside = false;
    for (const Rect& r : fp.find("t1")->regions) {
      inside = inside || r.contains(cell.position);
    }
    EXPECT_TRUE(inside);
  }
}

TEST(Netlist, DeterministicForSeed) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Netlist a = Netlist::place(fp, 3);
  const Netlist b = Netlist::place(fp, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.cells()[i].position, b.cells()[i].position);
    EXPECT_EQ(a.cells()[i].drive, b.cells()[i].drive);
  }
}

TEST(Netlist, DriveStrengthsClipped) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Netlist nl = Netlist::place(fp, 4);
  for (const auto& cell : nl.cells()) {
    EXPECT_GE(cell.drive, 0.25f);
    EXPECT_LE(cell.drive, 4.0f);
  }
}

TEST(Netlist, DensityGridSumsToDriveTotal) {
  const Floorplan fp = Floorplan::aes_testchip();
  const Netlist nl = Netlist::place(fp, 5);
  const Grid2D d = nl.cell_density("t4", 36, 36, fp.die());
  double drive_sum = 0.0;
  for (const auto& cell : nl.cells_of("t4")) drive_sum += cell.drive;
  EXPECT_NEAR(d.total(), drive_sum, 1e-9);
  EXPECT_THROW(nl.cell_density("nope", 4, 4, fp.die()),
               std::invalid_argument);
}

}  // namespace
}  // namespace psa::layout
