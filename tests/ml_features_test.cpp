// Envelope feature extraction on synthetic waveforms shaped like the four
// Trojans' zero-span envelopes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "ml/features.hpp"

namespace psa::ml {
namespace {

constexpr double kRate = 1.0e6;  // envelope sample rate for these tests

std::vector<double> sine_envelope(std::size_t n, double f, double base,
                                  double depth) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = base * (1.0 + depth * std::sin(kTwoPi * f *
                                          static_cast<double>(i) / kRate));
  }
  return x;
}

std::vector<double> square_envelope(std::size_t n, std::size_t period,
                                    double lo, double hi) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = ((i / (period / 2)) % 2 == 0) ? hi : lo;
  }
  return x;
}

std::vector<double> noise_envelope(std::size_t n, Rng& rng) {
  // Band-limited binary-ish noise: random level held for short spans.
  std::vector<double> x(n);
  double level = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 5 == 0) level = (rng() & 1) ? 1.0 : 0.05;
    x[i] = level;
  }
  return x;
}

TEST(Features, ConstantEnvelopeHasLowCv) {
  const std::vector<double> env(512, 1.0);
  const EnvelopeFeatures f = extract_envelope_features(env, kRate);
  EXPECT_NEAR(f.coeff_variation, 0.0, 1e-9);
  EXPECT_NEAR(f.mean_level, 1.0, 1e-12);
  EXPECT_NEAR(f.crest, 1.0, 1e-9);
}

TEST(Features, SineEnvelopeIsPeriodicAndSmooth) {
  const auto env = sine_envelope(4096, 20.0e3, 1.0, 0.9);
  const EnvelopeFeatures f = extract_envelope_features(env, kRate);
  EXPECT_GT(f.periodicity, 0.8);
  EXPECT_NEAR(f.period_s, 1.0 / 20.0e3, 1.0 / 20.0e3 * 0.1);
  // A sine spends most of its time away from the rails.
  EXPECT_LT(f.bimodality, 0.75);
  EXPECT_GT(f.coeff_variation, 0.3);
}

TEST(Features, SquareEnvelopeIsPeriodicAndBimodal) {
  const auto env = square_envelope(4096, 256, 0.05, 1.0);
  const EnvelopeFeatures f = extract_envelope_features(env, kRate);
  EXPECT_GT(f.periodicity, 0.8);
  EXPECT_GT(f.bimodality, 0.95);
  EXPECT_NEAR(f.duty, 0.5, 0.05);
}

TEST(Features, NoiseEnvelopeIsAperiodicAndFlat) {
  Rng rng(11);
  const auto env = noise_envelope(4096, rng);
  const EnvelopeFeatures f = extract_envelope_features(env, kRate);
  EXPECT_LT(f.periodicity, 0.45);
  EXPECT_GT(f.flatness, 0.3);
  EXPECT_GT(f.bimodality, 0.9);  // binary levels
}

TEST(Features, FlatnessSeparatesToneFromNoise) {
  Rng rng(13);
  const auto tone = sine_envelope(4096, 10.0e3, 1.0, 0.8);
  const auto noise = noise_envelope(4096, rng);
  const EnvelopeFeatures ft = extract_envelope_features(tone, kRate);
  const EnvelopeFeatures fn = extract_envelope_features(noise, kRate);
  EXPECT_LT(ft.flatness, fn.flatness);
}

TEST(Features, ShortInputIsSafe) {
  const std::vector<double> tiny(4, 1.0);
  const EnvelopeFeatures f = extract_envelope_features(tiny, kRate);
  EXPECT_DOUBLE_EQ(f.periodicity, 0.0);
  EXPECT_DOUBLE_EQ(f.mean_level, 0.0);
}

TEST(FeatureMatrix, ZScoreNormalized) {
  std::vector<EnvelopeFeatures> feats(4);
  feats[0].periodicity = 1.0;
  feats[1].periodicity = 2.0;
  feats[2].periodicity = 3.0;
  feats[3].periodicity = 4.0;
  const Matrix m = feature_matrix(feats);
  ASSERT_EQ(m.rows(), 4u);
  ASSERT_EQ(m.cols(), EnvelopeFeatures::kDim);
  // Column 0 (periodicity) is z-scored: mean 0, population sd 1.
  double mean = 0.0;
  for (std::size_t i = 0; i < 4; ++i) mean += m.at(i, 0);
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (std::size_t i = 0; i < 4; ++i) var += m.at(i, 0) * m.at(i, 0);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-9);
}

TEST(FeatureMatrix, ConstantColumnBecomesZero) {
  std::vector<EnvelopeFeatures> feats(3);
  for (auto& f : feats) f.duty = 0.5;
  const Matrix m = feature_matrix(feats);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m.at(i, 2), 0.0);
}

TEST(FeatureNames, MatchDimension) {
  EXPECT_EQ(EnvelopeFeatures::names().size(), EnvelopeFeatures::kDim);
}

}  // namespace
}  // namespace psa::ml
