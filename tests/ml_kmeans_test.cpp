// K-means and silhouette — used by both the backscattering baseline and the
// unsupervised Trojan-envelope clustering demo.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "ml/kmeans.hpp"

namespace psa::ml {
namespace {

Matrix make_blobs(std::size_t per_cluster,
                  const std::vector<std::pair<double, double>>& centers,
                  double sigma, Rng& rng) {
  Matrix m(per_cluster * centers.size(), 2);
  std::size_t row = 0;
  for (const auto& [cx, cy] : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i, ++row) {
      m.at(row, 0) = rng.gaussian(cx, sigma);
      m.at(row, 1) = rng.gaussian(cy, sigma);
    }
  }
  return m;
}

TEST(KMeans, SeparatesTwoBlobs) {
  Rng rng(1);
  const Matrix m = make_blobs(50, {{0.0, 0.0}, {10.0, 10.0}}, 0.5, rng);
  const KMeansResult r = kmeans(m, 2, rng);
  // All points of a blob share a label, and the two blobs differ.
  const std::size_t l0 = r.labels[0];
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(r.labels[i], l0);
  const std::size_t l1 = r.labels[50];
  EXPECT_NE(l0, l1);
  for (std::size_t i = 50; i < 100; ++i) EXPECT_EQ(r.labels[i], l1);
}

TEST(KMeans, CentroidsNearTruth) {
  Rng rng(2);
  const Matrix m = make_blobs(200, {{0.0, 0.0}, {8.0, -3.0}}, 0.4, rng);
  const KMeansResult r = kmeans(m, 2, rng);
  std::vector<std::pair<double, double>> cents;
  for (std::size_t c = 0; c < 2; ++c) {
    cents.emplace_back(r.centroids.at(c, 0), r.centroids.at(c, 1));
  }
  std::sort(cents.begin(), cents.end());
  EXPECT_NEAR(cents[0].first, 0.0, 0.2);
  EXPECT_NEAR(cents[0].second, 0.0, 0.2);
  EXPECT_NEAR(cents[1].first, 8.0, 0.2);
  EXPECT_NEAR(cents[1].second, -3.0, 0.2);
}

TEST(KMeans, ConvergesAndReportsInertia) {
  Rng rng(3);
  const Matrix m = make_blobs(100, {{0.0, 0.0}, {5.0, 5.0}, {-5.0, 5.0}},
                              0.3, rng);
  const KMeansResult r = kmeans(m, 3, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
  // Inertia for tight blobs: ~ n * 2 * sigma^2 = 300 * 2 * 0.09 = 54.
  EXPECT_LT(r.inertia, 120.0);
}

TEST(KMeans, DeterministicGivenSameRngState) {
  Rng rng1(42);
  Rng rng2(42);
  const Matrix m = make_blobs(40, {{0.0, 0.0}, {6.0, 6.0}}, 0.5, rng1);
  Rng rng1b(7);
  Rng rng2b(7);
  const KMeansResult a = kmeans(m, 2, rng1b);
  const KMeansResult b = kmeans(m, 2, rng2b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KEqualsNAssignsEachPointItsOwnCluster) {
  Rng rng(5);
  const Matrix m = make_blobs(1, {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}}, 0.01,
                              rng);
  const KMeansResult r = kmeans(m, 3, rng);
  const std::set<std::size_t> labels(r.labels.begin(), r.labels.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_LT(r.inertia, 1e-3);
}

TEST(KMeans, RejectsBadK) {
  Rng rng(6);
  const Matrix m = make_blobs(5, {{0.0, 0.0}}, 0.1, rng);
  EXPECT_THROW(kmeans(m, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans(m, 6, rng), std::invalid_argument);
}

TEST(Silhouette, WellSeparatedNearOne) {
  Rng rng(7);
  const Matrix m = make_blobs(50, {{0.0, 0.0}, {20.0, 20.0}}, 0.3, rng);
  const KMeansResult r = kmeans(m, 2, rng);
  EXPECT_GT(silhouette_score(m, r.labels), 0.9);
}

TEST(Silhouette, OverlappingCloudsLow) {
  Rng rng(8);
  const Matrix m = make_blobs(100, {{0.0, 0.0}, {0.5, 0.5}}, 2.0, rng);
  const KMeansResult r = kmeans(m, 2, rng);
  EXPECT_LT(silhouette_score(m, r.labels), 0.5);
}

TEST(Silhouette, DegenerateInputsZero) {
  Matrix m(2, 2);
  const std::vector<std::size_t> one_cluster = {0, 0};
  EXPECT_DOUBLE_EQ(silhouette_score(m, one_cluster), 0.0);
}

TEST(SquaredDistance, Basic) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

}  // namespace
}  // namespace psa::ml
