// Jacobi eigensolver and PCA — the machinery behind the backscattering
// baseline's clustering stage.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/pca.hpp"

namespace psa::ml {
namespace {

TEST(Jacobi, DiagonalMatrixIsItsOwnEigenvalues) {
  Matrix a(3, 3);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = 1.0;
  a.at(2, 2) = 2.0;
  const EigenResult e = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(Jacobi, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 2.0;
  const EigenResult e = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = e.vectors.at(0, 0);
  const double v1 = e.vectors.at(1, 0);
  EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(v0, v1, 1e-9);
}

TEST(Jacobi, EigenvectorsAreOrthonormal) {
  Rng rng(8);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a.at(i, j) = rng.gaussian();
      a.at(j, i) = a.at(i, j);
    }
  }
  const EigenResult e = jacobi_eigen_symmetric(a);
  for (std::size_t c1 = 0; c1 < n; ++c1) {
    for (std::size_t c2 = 0; c2 < n; ++c2) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += e.vectors.at(i, c1) * e.vectors.at(i, c2);
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Jacobi, ReconstructsMatrix) {
  Rng rng(15);
  const std::size_t n = 5;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a.at(i, j) = rng.gaussian();
      a.at(j, i) = a.at(i, j);
    }
  }
  const EigenResult e = jacobi_eigen_symmetric(a);
  // A = V diag(L) V^T.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        v += e.vectors.at(i, k) * e.values[k] * e.vectors.at(j, k);
      }
      EXPECT_NEAR(v, a.at(i, j), 1e-9);
    }
  }
}

TEST(Jacobi, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(jacobi_eigen_symmetric(a), std::invalid_argument);
}

Matrix anisotropic_cloud(std::size_t n, Rng& rng) {
  // 2-D cloud stretched 10:1 along the (1,1) direction.
  Matrix samples(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double major = rng.gaussian(0.0, 10.0);
    const double minor = rng.gaussian(0.0, 1.0);
    samples.at(i, 0) = 5.0 + (major + minor) / std::sqrt(2.0);
    samples.at(i, 1) = -3.0 + (major - minor) / std::sqrt(2.0);
  }
  return samples;
}

TEST(Pca, FirstComponentAlongMajorAxis) {
  Rng rng(3);
  const Matrix samples = anisotropic_cloud(2000, rng);
  const Pca pca = Pca::fit(samples, 2);
  const auto c0 = pca.component(0);
  // Major axis is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(c0[0]), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(c0[0] * c0[1], 0.5, 0.05);  // same sign
}

TEST(Pca, ExplainedVarianceOrderingAndScale) {
  Rng rng(4);
  const Matrix samples = anisotropic_cloud(2000, rng);
  const Pca pca = Pca::fit(samples, 2);
  EXPECT_GT(pca.explained_variance()[0], pca.explained_variance()[1]);
  EXPECT_NEAR(pca.explained_variance()[0], 100.0, 15.0);
  EXPECT_NEAR(pca.explained_variance()[1], 1.0, 0.3);
}

TEST(Pca, MeanIsRemoved) {
  Rng rng(5);
  const Matrix samples = anisotropic_cloud(500, rng);
  const Pca pca = Pca::fit(samples, 2);
  EXPECT_NEAR(pca.mean()[0], 5.0, 1.5);
  EXPECT_NEAR(pca.mean()[1], -3.0, 1.5);
  // Projection of the mean itself is ~0.
  const std::vector<double> mean_vec(pca.mean().begin(), pca.mean().end());
  const auto p = pca.transform(mean_vec);
  EXPECT_NEAR(p[0], 0.0, 1e-9);
}

TEST(Pca, TransformMatrixShape) {
  Rng rng(6);
  const Matrix samples = anisotropic_cloud(100, rng);
  const Pca pca = Pca::fit(samples, 1);
  const Matrix proj = pca.transform(samples);
  EXPECT_EQ(proj.rows(), 100u);
  EXPECT_EQ(proj.cols(), 1u);
}

TEST(Pca, DimMismatchThrows) {
  Rng rng(7);
  const Matrix samples = anisotropic_cloud(50, rng);
  const Pca pca = Pca::fit(samples, 2);
  const std::vector<double> bad(3, 0.0);
  EXPECT_THROW(pca.transform(bad), std::invalid_argument);
}

TEST(Pca, TooFewSamplesThrows) {
  Matrix one(1, 4);
  EXPECT_THROW(Pca::fit(one, 2), std::invalid_argument);
}

}  // namespace
}  // namespace psa::ml
