// monitor_test.cpp — RuntimeMonitor edge cases: the MonitorState window and
// debounce machinery, activation at trace 0, windows longer than the run,
// and sentinel fail-over on a degraded pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/monitor.hpp"
#include "analysis/pipeline.hpp"
#include "fault/fault.hpp"
#include "fixtures.hpp"
#include "sim/chip_simulator.hpp"

namespace psa {
namespace {

using tests::light_config;
using tests::make_chip;

dsp::Spectrum one_bin(double magnitude) {
  dsp::Spectrum s;
  s.freq_hz = {0.0, 1.0e6};
  s.magnitude = {magnitude, magnitude};
  return s;
}

// ----------------------------------------------------- MonitorState unit

TEST(MonitorState, WindowTrimsToSlidingWindow) {
  analysis::MonitorConfig cfg;
  cfg.sliding_window = 3;
  analysis::MonitorState state(cfg);
  for (int i = 1; i <= 5; ++i) {
    state.push(one_bin(static_cast<double>(i)));
    EXPECT_LE(state.window_size(), 3u);
  }
  // Window now holds {3,4,5}: the average is 4.
  const dsp::Spectrum avg = state.push(one_bin(6.0));  // -> {4,5,6}
  EXPECT_DOUBLE_EQ(avg.magnitude[0], 5.0);
  EXPECT_EQ(state.window_size(), 3u);
}

TEST(MonitorState, ZeroSlidingWindowBehavesAsOne) {
  analysis::MonitorConfig cfg;
  cfg.sliding_window = 0;
  analysis::MonitorState state(cfg);
  const dsp::Spectrum a = state.push(one_bin(2.0));
  const dsp::Spectrum b = state.push(one_bin(8.0));
  EXPECT_EQ(state.window_size(), 1u);
  EXPECT_DOUBLE_EQ(a.magnitude[0], 2.0);
  EXPECT_DOUBLE_EQ(b.magnitude[0], 8.0);  // no stale history averaged in
}

TEST(MonitorState, DebounceRequiresConsecutiveDetections) {
  analysis::MonitorConfig cfg;
  cfg.consecutive_alarms = 2;
  analysis::MonitorState state(cfg);
  EXPECT_FALSE(state.record(true));
  EXPECT_EQ(state.streak(), 1u);
  EXPECT_TRUE(state.record(true));
  EXPECT_EQ(state.streak(), 2u);
}

TEST(MonitorState, NonAlarmTraceResetsTheStreak) {
  analysis::MonitorConfig cfg;
  cfg.consecutive_alarms = 2;
  analysis::MonitorState state(cfg);
  EXPECT_FALSE(state.record(true));
  EXPECT_FALSE(state.record(false));  // reset
  EXPECT_EQ(state.streak(), 0u);
  EXPECT_FALSE(state.record(true));   // streak restarts from scratch
  EXPECT_TRUE(state.record(true));
}

TEST(MonitorState, SingleAlarmDebounceFiresImmediately) {
  analysis::MonitorConfig cfg;
  cfg.consecutive_alarms = 1;
  analysis::MonitorState state(cfg);
  EXPECT_FALSE(state.record(false));
  EXPECT_TRUE(state.record(true));
}

// ------------------------------------------------- monitor end to end

class MonitorFixture : public ::testing::Test {
 protected:
  MonitorFixture() : chip_(make_chip()), pipeline_(chip_, light_config()) {}

  sim::ChipSimulator chip_;
  analysis::Pipeline pipeline_;
};

TEST_F(MonitorFixture, ActivationAtTraceZero) {
  pipeline_.enroll(sim::Scenario::baseline(5000));
  analysis::MonitorConfig cfg;
  cfg.max_traces = 16;
  const analysis::RuntimeMonitor monitor(pipeline_, cfg);
  const analysis::MonitorOutcome out = monitor.run(
      sim::Scenario::baseline(600),
      sim::Scenario::with_trojan(trojan::TrojanKind::kT1AmCarrier, 600),
      /*activation_trace=*/0);
  // Every trace is Trojan-active; if the alarm fires the accounting starts
  // at trace 0 and must respect the debounce.
  if (out.alarmed) {
    EXPECT_GE(out.traces_after_activation, cfg.consecutive_alarms);
    EXPECT_LE(out.traces_after_activation, cfg.max_traces);
    EXPECT_DOUBLE_EQ(
        out.mttd_s, static_cast<double>(out.traces_after_activation) *
                        cfg.trace_interval_s);
  }
}

TEST_F(MonitorFixture, SlidingWindowLargerThanMaxTraces) {
  pipeline_.enroll(sim::Scenario::baseline(5000));
  analysis::MonitorConfig cfg;
  cfg.sliding_window = 128;  // never fills: averages everything seen so far
  cfg.max_traces = 6;
  const analysis::RuntimeMonitor monitor(pipeline_, cfg);
  const analysis::MonitorOutcome out = monitor.run(
      sim::Scenario::baseline(601),
      sim::Scenario::with_trojan(trojan::TrojanKind::kT2KeyLeak, 601),
      /*activation_trace=*/2);
  EXPECT_LE(out.traces_after_activation, cfg.max_traces);
  if (!out.alarmed) {
    EXPECT_EQ(out.traces_after_activation, 0u);
    EXPECT_DOUBLE_EQ(out.mttd_s, 0.0);
  }
}

TEST_F(MonitorFixture, EffectiveSentinelIsConfiguredSensorWhenHealthy) {
  analysis::MonitorConfig cfg;
  cfg.sentinel_sensor = 10;
  const analysis::RuntimeMonitor monitor(pipeline_, cfg);
  EXPECT_EQ(monitor.effective_sentinel(), 10u);
}

TEST_F(MonitorFixture, SentinelFailsOverToNextHealthySensor) {
  const std::vector<std::size_t> victims{10};
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/true));
  pipeline_.configure_degraded(injector.array_faults());
  ASSERT_TRUE(pipeline_.sensor_masked(10));

  analysis::MonitorConfig cfg;
  cfg.sentinel_sensor = 10;
  cfg.max_traces = 4;
  const analysis::RuntimeMonitor monitor(pipeline_, cfg);
  EXPECT_EQ(monitor.effective_sentinel(), 11u);

  // The monitor streams the substitute sentinel without throwing.
  pipeline_.enroll(sim::Scenario::baseline(5001));
  const analysis::MonitorOutcome out = monitor.run(
      sim::Scenario::baseline(602),
      sim::Scenario::with_trojan(trojan::TrojanKind::kT3CdmaLeak, 602),
      /*activation_trace=*/1);
  EXPECT_LE(out.traces_after_activation, cfg.max_traces);
}

TEST_F(MonitorFixture, SubstitutedSentinelIsNotFailedOver) {
  // A corner-killed sensor keeps its slot through a substitute coil: the
  // sentinel stays put.
  const std::vector<std::size_t> victims{10};
  const fault::FaultInjector injector(
      fault::plan_killing_sensors(victims, 0, /*block_substitutes=*/false));
  const analysis::DegradedModeReport report =
      pipeline_.configure_degraded(injector.array_faults());
  ASSERT_TRUE(report.substituted[10]);
  analysis::MonitorConfig cfg;
  cfg.sentinel_sensor = 10;
  const analysis::RuntimeMonitor monitor(pipeline_, cfg);
  EXPECT_EQ(monitor.effective_sentinel(), 10u);
}

}  // namespace
}  // namespace psa
