// obs_test.cpp — the observability layer itself: sharded counter and
// histogram correctness under parallel_for hammering, registry attach/
// detach and export formats, span recording/nesting/Chrome JSON, and
// snapshot-while-recording safety. Every test also compiles (and the
// non-span parts run) in PSA_OBS=OFF builds, where the macros are no-ops
// but the classes stay fully functional.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "fixtures.hpp"
#include "obs/obs.hpp"

namespace psa {
namespace {

/// Flips span recording on for one test and restores the disabled default
/// (tests must not leak a hot clock into the rest of the suite).
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() { obs::set_enabled(true); }
  ~ObsEnabledGuard() {
    obs::set_enabled(false);
    obs::TraceRecorder::global().clear();
  }
};

// -------------------------------------------------------------- counters

TEST(ObsCounter, ExactUnderParallelForHammering) {
  tests::ThreadCountGuard guard;
  set_thread_count(4);
  obs::Counter c;
  constexpr std::size_t kIters = 200000;
  parallel_for(0, kIters, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kIters);  // no lost updates across shards
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(ObsCounter, RegistryNamedCounterIsSingleInstance) {
  obs::Counter& a = obs::Registry::global().counter("obs_test.named");
  obs::Counter& b = obs::Registry::global().counter("obs_test.named");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.value();
  b.add(5);
  EXPECT_EQ(a.value(), before + 5);
}

TEST(ObsCounter, AttachDetachRoundTrip) {
  obs::Counter mine;
  mine.add(7);
  const std::uint64_t id =
      obs::Registry::global().attach_counter("obs_test.attached", &mine);
  obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  EXPECT_TRUE(snap.has_counter("obs_test.attached"));
  EXPECT_EQ(snap.counter_value("obs_test.attached"), 7u);

  // A second attachment under the same name gets a suffixed slot instead of
  // silently shadowing the first.
  obs::Counter other;
  other.add(1);
  const std::uint64_t id2 =
      obs::Registry::global().attach_counter("obs_test.attached", &other);
  snap = obs::Registry::global().snapshot();
  EXPECT_TRUE(snap.has_counter("obs_test.attached#2"));

  // Detach retires the final total under the attached name, so process-end
  // exports still report instances destroyed before the dump.
  obs::Registry::global().detach(id);
  obs::Registry::global().detach(id2);
  mine.add(100);  // post-detach activity must not leak into the registry
  snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counter_value("obs_test.attached"), 7u);
  EXPECT_EQ(snap.counter_value("obs_test.attached#2"), 1u);

  // A third attachment must not collide with the retired slots.
  obs::Counter third;
  const std::uint64_t id3 =
      obs::Registry::global().attach_counter("obs_test.attached", &third);
  snap = obs::Registry::global().snapshot();
  EXPECT_TRUE(snap.has_counter("obs_test.attached#3"));
  obs::Registry::global().detach(id3);
}

// ------------------------------------------------------------ histograms

TEST(ObsHistogram, CountSumMinMaxExactUnderParallelFor) {
  tests::ThreadCountGuard guard;
  set_thread_count(4);
  obs::Histogram h(obs::default_value_bounds());
  constexpr std::size_t kIters = 50000;
  parallel_for(0, kIters, 500, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      h.record(static_cast<double>(i % 10));  // 0..9, small exact doubles
    }
  });
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, kIters);
  // Sum of 0..9 repeated: small integers add exactly in double.
  EXPECT_EQ(s.sum, static_cast<double>(kIters / 10) * 45.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 9.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kIters);
}

TEST(ObsHistogram, QuantilesInterpolateAndClampToObservedRange) {
  obs::Histogram h({1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_EQ(s.quantile(0.0), 1.0);    // clamped to observed min
  EXPECT_EQ(s.quantile(1.0), 100.0);  // clamped to observed max
  const double p50 = s.quantile(0.5);
  EXPECT_GE(p50, 20.0);  // 50th value = 50 lives in the (20, 50] bucket
  EXPECT_LE(p50, 50.0);
  const double p90 = s.quantile(0.9);
  EXPECT_GE(p90, 50.0);
  EXPECT_LE(p90, 100.0);
  EXPECT_LE(p50, p90);  // quantiles are monotone in q
}

TEST(ObsHistogram, SnapshotWhileRecordingNeverTearsInvariants) {
  obs::Histogram h(obs::default_value_bounds());
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 200000 && !done.load(std::memory_order_relaxed);
         ++i) {
      h.record(1.0);
    }
    done.store(true, std::memory_order_release);
  });
  std::uint64_t last_count = 0;
  while (!done.load(std::memory_order_acquire)) {
    const obs::Histogram::Snapshot s = h.snapshot();
    // count and sum are separate relaxed atomics, so a concurrent cut may
    // see them skewed by in-flight records — but each stays bounded and
    // count is monotone, and min/max can only ever be the recorded value.
    EXPECT_LE(s.count, 200000u);
    EXPECT_LE(s.sum, 200000.0);
    EXPECT_GE(s.count, last_count);
    last_count = s.count;
    if (s.count > 0) {
      EXPECT_EQ(s.min, 1.0);
      EXPECT_EQ(s.max, 1.0);
    }
  }
  writer.join();
  const obs::Histogram::Snapshot fin = h.snapshot();
  EXPECT_EQ(fin.count, 200000u);  // quiescent fold is exact
  EXPECT_EQ(fin.sum, 200000.0);
}

// --------------------------------------------------------------- exports

TEST(ObsExport, JsonAndCsvCarryCountersGaugesHistograms) {
  obs::Registry::global().counter("obs_test.export_counter").add(2);
  obs::Registry::global().gauge("obs_test.export_gauge").set(1.5);
  obs::Registry::global()
      .histogram("obs_test.export_hist", obs::default_value_bounds())
      .record(3.0);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();

  std::ostringstream json;
  snap.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"obs_test.export_counter\""), std::string::npos);
  EXPECT_NE(j.find("\"obs_test.export_gauge\""), std::string::npos);
  EXPECT_NE(j.find("\"obs_test.export_hist\""), std::string::npos);

  std::ostringstream csv;
  snap.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_NE(c.find("obs_test.export_counter"), std::string::npos);
  EXPECT_NE(c.find("counter"), std::string::npos);
  EXPECT_NE(c.find("histogram"), std::string::npos);
}

// ----------------------------------------------------------------- spans
// Span machinery (clock + recorder) is compiled in both modes, but the
// macros only exist in instrumented builds; the macro-driven tests are
// gated so a PSA_OBS=OFF ctest run still passes.

TEST(ObsSpan, InertWhenDisabled) {
  obs::TraceRecorder::global().clear();
  ASSERT_FALSE(obs::enabled());
  {
    obs::Span span("obs_test.disabled", {{"k", 1}});
  }
  EXPECT_EQ(obs::TraceRecorder::global().span_count(), 0u);
}

TEST(ObsSpan, RecordsNestingAndOrdering) {
  ObsEnabledGuard guard;
  obs::TraceRecorder::global().clear();
  {
    obs::Span outer("obs_test.outer", {{"stage", "scan"}});
    {
      obs::Span inner("obs_test.inner", {{"sensor", 7}});
    }
  }
  const std::vector<obs::SpanRecord> spans =
      obs::TraceRecorder::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans complete inner-first (RAII), so the buffer order is inner, outer.
  EXPECT_EQ(spans[0].name, "obs_test.inner");
  EXPECT_EQ(spans[1].name, "obs_test.outer");
  const obs::SpanRecord& inner = spans[0];
  const obs::SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.tid, outer.tid);
  // Same-thread nesting: the inner interval sits inside the outer one.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].key, "sensor");
  EXPECT_EQ(inner.args[0].text, "7");
  EXPECT_FALSE(inner.args[0].is_string);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_TRUE(outer.args[0].is_string);
}

TEST(ObsSpan, ChromeJsonIsCompleteEventsWithArgs) {
  ObsEnabledGuard guard;
  obs::TraceRecorder::global().clear();
  {
    obs::Span span("obs_test.chrome", {{"sensor", 3}, {"label", "s3\"q"}});
  }
  std::ostringstream os;
  obs::TraceRecorder::global().write_chrome_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);  // complete events
  EXPECT_NE(j.find("\"name\": \"obs_test.chrome\""), std::string::npos);
  EXPECT_NE(j.find("\"sensor\": 3"), std::string::npos);  // bare number
  EXPECT_NE(j.find("\\\"q"), std::string::npos);          // escaped quote
  EXPECT_NE(j.find("\"dur\": "), std::string::npos);
}

TEST(ObsSpan, ConcurrentRecordingAndSnapshotAreSafe) {
  ObsEnabledGuard guard;
  obs::TraceRecorder::global().clear();
  tests::ThreadCountGuard tguard;
  set_thread_count(4);
  constexpr std::size_t kSpans = 2000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)obs::TraceRecorder::global().snapshot();  // must never tear
    }
  });
  parallel_for(0, kSpans, 50, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      obs::Span span("obs_test.par", {{"i", i}});
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();
  // The pool records its own parallel.chunk spans while enabled, so count
  // only ours.
  std::size_t ours = 0;
  for (const obs::SpanRecord& rec : obs::TraceRecorder::global().snapshot()) {
    if (rec.name == "obs_test.par") ++ours;
  }
  EXPECT_EQ(ours, kSpans);
}

#if PSA_OBS_ENABLED

TEST(ObsMacros, CounterGaugeHistogramLand) {
  const std::uint64_t before = obs::Registry::global()
                                   .snapshot()
                                   .counter_value("obs_test.macro_counter");
  PSA_COUNTER_ADD("obs_test.macro_counter", 2);
  PSA_GAUGE_SET("obs_test.macro_gauge", 4.25);
  PSA_HISTOGRAM_RECORD("obs_test.macro_hist", 2.0);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counter_value("obs_test.macro_counter"), before + 2);
  bool found_gauge = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "obs_test.macro_gauge") {
      found_gauge = true;
      EXPECT_EQ(v, 4.25);
    }
  }
  EXPECT_TRUE(found_gauge);
}

TEST(ObsMacros, TraceSpanMacroRespectsRuntimeGate) {
  obs::TraceRecorder::global().clear();
  {
    PSA_TRACE_SPAN("obs_test.macro_span", {{"off", 1}});
  }
  EXPECT_EQ(obs::TraceRecorder::global().span_count(), 0u);  // disabled
  ObsEnabledGuard guard;
  {
    PSA_TRACE_SPAN("obs_test.macro_span", {{"on", 1}});
  }
  EXPECT_EQ(obs::TraceRecorder::global().span_count(), 1u);
}

TEST(ObsMacros, InstrumentedMeasurementIsBitIdenticalWithObsOn) {
  // Flipping the runtime gate must never change the numerics — spans and
  // timers observe the measurement, they are not part of it.
  const sim::ChipSimulator chip = tests::make_chip();
  const std::vector<sim::SensorView> views =
      tests::standard_views(chip, {2, 13});
  const sim::Scenario s = sim::Scenario::baseline(tests::kGoldenSeed);
  const std::vector<sim::MeasuredTrace> off =
      chip.measure_batch(std::span<const sim::SensorView>(views), s, 128);
  std::vector<sim::MeasuredTrace> on;
  {
    ObsEnabledGuard guard;
    on = chip.measure_batch(std::span<const sim::SensorView>(views), s, 128);
    EXPECT_GT(obs::TraceRecorder::global().span_count(), 0u);
  }
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_TRUE(tests::same_samples(on[i], off[i])) << "sensor slot " << i;
  }
}

#endif  // PSA_OBS_ENABLED

}  // namespace
}  // namespace psa
