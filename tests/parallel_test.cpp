// Concurrency layer: parallel_for/parallel_invoke semantics, the
// determinism contract (bit-identical results at 1, 2 and 8 threads for
// FluxMap::compute and Pipeline::scan_scores), and FluxMapCache behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/pipeline.hpp"
#include "common/parallel.hpp"
#include "em/fluxmap.hpp"
#include "em/fluxmap_cache.hpp"
#include "layout/floorplan.hpp"
#include "sim/chip_simulator.hpp"

namespace psa {
namespace {

TEST(PlanChunks, EmptyRangePlansNothing) {
  EXPECT_EQ(plan_chunks(5, 5, 0, 4).n_chunks, 0u);
  EXPECT_EQ(plan_chunks(5, 5, 3, 4).n_chunks, 0u);
  EXPECT_EQ(plan_chunks(7, 5, 0, 4).n_chunks, 0u);  // inverted range
}

TEST(PlanChunks, RangeSmallerThanChunkIsOneChunk) {
  const ChunkPlan plan = plan_chunks(0, 3, 10, 4);
  ASSERT_EQ(plan.n_chunks, 1u);
  EXPECT_EQ(plan.bounds(0), (std::pair<std::size_t, std::size_t>{0, 3}));
}

TEST(PlanChunks, RangeEqualToParticipantsGivesOneIndexEach) {
  // The regression this pins down: the default (chunk == 0) partition must
  // be computed from TOTAL participants (workers + caller), one chunk per
  // participant — never more chunks than participants, never a sliver chunk
  // that leaves one participant idle while another runs two.
  const std::size_t participants = 4;
  const ChunkPlan plan = plan_chunks(0, participants, 0, participants);
  ASSERT_EQ(plan.n_chunks, participants);
  for (std::size_t c = 0; c < plan.n_chunks; ++c) {
    const auto [lo, hi] = plan.bounds(c);
    EXPECT_EQ(hi - lo, 1u) << "chunk " << c;
    EXPECT_EQ(lo, c);
  }
}

TEST(PlanChunks, FewerIndicesThanParticipantsNeverPlansEmptyChunks) {
  const ChunkPlan plan = plan_chunks(0, 3, 0, 8);
  ASSERT_EQ(plan.n_chunks, 3u);
  for (std::size_t c = 0; c < plan.n_chunks; ++c) {
    const auto [lo, hi] = plan.bounds(c);
    EXPECT_EQ(hi - lo, 1u);
  }
}

TEST(PlanChunks, DefaultPartitionIsBalancedAndTiles) {
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 15u, 16u, 17u, 100u}) {
    for (std::size_t participants : {1u, 2u, 3u, 4u, 8u}) {
      const std::size_t begin = 11;
      const ChunkPlan plan = plan_chunks(begin, begin + count, 0, participants);
      ASSERT_EQ(plan.n_chunks, std::min(count, participants));
      std::size_t expect_lo = begin;
      std::size_t min_sz = count, max_sz = 0;
      for (std::size_t c = 0; c < plan.n_chunks; ++c) {
        const auto [lo, hi] = plan.bounds(c);
        EXPECT_EQ(lo, expect_lo) << "gap before chunk " << c;
        ASSERT_GT(hi, lo);
        min_sz = std::min(min_sz, hi - lo);
        max_sz = std::max(max_sz, hi - lo);
        expect_lo = hi;
      }
      EXPECT_EQ(expect_lo, begin + count);
      EXPECT_LE(max_sz - min_sz, 1u)
          << "unbalanced at count=" << count << " p=" << participants;
    }
  }
}

TEST(PlanChunks, UniformChunksTileTheRange) {
  const ChunkPlan plan = plan_chunks(2, 25, 7, 4);
  ASSERT_EQ(plan.n_chunks, 4u);  // ceil(23 / 7)
  EXPECT_EQ(plan.bounds(0), (std::pair<std::size_t, std::size_t>{2, 9}));
  EXPECT_EQ(plan.bounds(3), (std::pair<std::size_t, std::size_t>{23, 25}));
}

TEST(ParallelFor, DefaultChunkingInvokesBodyOncePerParticipant) {
  set_thread_count(4);  // 3 workers + the caller
  std::atomic<int> invocations{0};
  parallel_for(0, 16, 0, [&](std::size_t, std::size_t) {
    invocations.fetch_add(1);
  });
  EXPECT_EQ(invocations.load(), 4);

  invocations = 0;
  parallel_for(0, 3, 0, [&](std::size_t, std::size_t) {
    invocations.fetch_add(1);
  });
  EXPECT_EQ(invocations.load(), 3);  // never more chunks than indices
  set_thread_count(0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  set_thread_count(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> writes(kN);
  parallel_for(0, kN, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) writes[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(writes[i].load(), 1);
}

TEST(ParallelFor, EmptyAndSingleChunkRanges) {
  set_thread_count(4);
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, 0, [&](std::size_t lo, std::size_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 3);
}

TEST(ParallelFor, PropagatesException) {
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 50) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  set_thread_count(4);
  std::vector<double> out(64, 0.0);
  parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Inner call from a pool context must degrade to serial, not deadlock.
      parallel_for(0, 8, 1, [&](std::size_t jlo, std::size_t jhi) {
        for (std::size_t j = jlo; j < jhi; ++j) {
          out[i * 8 + j] = static_cast<double>(i * 8 + j);
        }
      });
    }
  });
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(out[k], static_cast<double>(k));
  }
}

TEST(ParallelInvoke, RunsAllTasksAndRethrows) {
  set_thread_count(4);
  std::atomic<int> ran{0};
  parallel_invoke([&] { ran.fetch_add(1); }, [&] { ran.fetch_add(1); },
                  [&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
  EXPECT_THROW(parallel_invoke([] { throw std::logic_error("x"); },
                               [&] { ran.fetch_add(1); }),
               std::logic_error);
  EXPECT_EQ(ran.load(), 4);  // the healthy task still ran
}

TEST(ThreadConfig, SetThreadCountTakesEffect) {
  set_thread_count(8);
  EXPECT_EQ(thread_count(), 8u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
}

em::FluxMap::Params small_params() {
  em::FluxMap::Params p;
  p.winding_raster = 48;
  p.source_nx = 12;
  p.source_ny = 12;
  return p;
}

TEST(FluxMapDeterminism, BitIdenticalAcrossThreadCounts) {
  const Rect die{{0.0, 0.0}, {576.0, 576.0}};
  const Polyline coil = {{32.0, 32.0}, {288.0, 32.0},
                         {288.0, 288.0}, {32.0, 288.0}};
  set_thread_count(1);
  const em::FluxMap serial = em::FluxMap::compute(coil, die, small_params());
  for (std::size_t threads : {2u, 8u}) {
    set_thread_count(threads);
    const em::FluxMap par = em::FluxMap::compute(coil, die, small_params());
    ASSERT_EQ(par.flux_grid().data().size(), serial.flux_grid().data().size());
    EXPECT_EQ(std::memcmp(par.flux_grid().data().data(),
                          serial.flux_grid().data().data(),
                          serial.flux_grid().data().size() * sizeof(double)),
              0)
        << "flux map diverged at " << threads << " threads";
    EXPECT_EQ(par.signed_area_m2(), serial.signed_area_m2());
    EXPECT_EQ(par.gross_area_m2(), serial.gross_area_m2());
  }
  set_thread_count(0);
}

TEST(FluxMapCache, HitsMissesAndSharing) {
  em::FluxMapCache cache;
  const Rect die{{0.0, 0.0}, {576.0, 576.0}};
  const Polyline coil = {{32.0, 32.0}, {160.0, 32.0},
                         {160.0, 160.0}, {32.0, 160.0}};
  const auto a = cache.get_or_compute(coil, die, small_params());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const auto b = cache.get_or_compute(coil, die, small_params());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(a.get(), b.get());  // shared, not recomputed

  // Any parameter change is a different key.
  em::FluxMap::Params taller = small_params();
  taller.dipole_height_um += 10.0;
  const auto c = cache.get_or_compute(coil, die, taller);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(a.get(), c.get());

  // So is any vertex change.
  Polyline moved = coil;
  moved[2].x += 16.0;
  cache.get_or_compute(moved, die, small_params());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.get_or_compute(coil, die, small_params());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FluxMapCache, EvictsOldestBeyondCapacity) {
  em::FluxMapCache cache(/*max_entries=*/2);
  const Rect die{{0.0, 0.0}, {576.0, 576.0}};
  auto coil_at = [](double x) {
    return Polyline{{x, 32.0}, {x + 64.0, 32.0},
                    {x + 64.0, 96.0}, {x, 96.0}};
  };
  cache.get_or_compute(coil_at(32.0), die, small_params());
  cache.get_or_compute(coil_at(128.0), die, small_params());
  cache.get_or_compute(coil_at(224.0), die, small_params());  // evicts first
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.get_or_compute(coil_at(32.0), die, small_params());   // miss again
  EXPECT_EQ(cache.stats().misses, 4u);
  cache.get_or_compute(coil_at(224.0), die, small_params());  // still cached
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PipelineDeterminism, ScanScoresBitIdenticalAcrossThreadCounts) {
  const sim::ChipSimulator chip(sim::SimTiming{},
                                layout::Floorplan::aes_testchip());
  // Reduced budget: determinism does not depend on trace length or count,
  // and this keeps the three full enroll+scan flows quick.
  analysis::PipelineConfig cfg;
  cfg.cycles_per_trace = 256;
  cfg.enrollment_traces = 3;
  cfg.detection_averages = 2;

  const sim::Scenario normal = sim::Scenario::baseline(777);
  const sim::Scenario infected =
      sim::Scenario::with_trojan(trojan::TrojanKind::kT3CdmaLeak, 778);

  std::array<double, 16> serial_scores{};
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_thread_count(threads);
    analysis::Pipeline pipeline(chip, cfg);
    pipeline.enroll(normal);  // enrollment itself runs on the pool
    const std::array<double, 16> scores = pipeline.scan_scores(infected);
    if (threads == 1) {
      serial_scores = scores;
    } else {
      EXPECT_EQ(std::memcmp(scores.data(), serial_scores.data(),
                            sizeof(scores)),
                0)
          << "scan scores diverged at " << threads << " threads";
    }
  }
  set_thread_count(0);
}

}  // namespace
}  // namespace psa
