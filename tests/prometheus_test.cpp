// prometheus_test.cpp — the Prometheus text-exposition renderer on
// hand-built snapshots: name sanitization to the exposition grammar,
// label-value escaping, non-finite literals, and the per-bucket →
// cumulative re-accumulation (with the closing le="+Inf") that scrapers
// require of a histogram family.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/prometheus.hpp"
#include "obs/registry.hpp"

namespace psa {
namespace {

std::string render(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  obs::render_prometheus(snap, os);
  return os.str();
}

// ------------------------------------------------------------ name rules

TEST(PrometheusName, DotsAndDashesCollapseToUnderscore) {
  EXPECT_EQ(obs::prometheus_name("sim.activity_cache.hits"),
            "psa_sim_activity_cache_hits");
  EXPECT_EQ(obs::prometheus_name("net.http-requests#2"),
            "psa_net_http_requests_2");
}

TEST(PrometheusName, LeadingDigitNeedsPrefixOrUnderscore) {
  // With the default prefix the digit is interior, hence legal.
  EXPECT_EQ(obs::prometheus_name("2fast"), "psa_2fast");
  // Bare (no prefix) names must not start with a digit.
  const std::string bare = obs::prometheus_name("2fast", "");
  ASSERT_FALSE(bare.empty());
  EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(bare[0])));
}

TEST(PrometheusName, EmptyInputStaysNonEmpty) {
  EXPECT_FALSE(obs::prometheus_name("", "").empty());
}

TEST(PrometheusName, ColonsAndUnderscoresSurvive) {
  EXPECT_EQ(obs::prometheus_name("a:b_c", ""), "a:b_c");
}

// ------------------------------------------------------------- escaping

TEST(PrometheusEscape, LabelValueEscapes) {
  EXPECT_EQ(obs::prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(obs::prometheus_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_label_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prometheus_label_escape("two\nlines"), "two\\nlines");
}

TEST(PrometheusNumber, NonFiniteLiterals) {
  EXPECT_EQ(obs::prometheus_number(std::nan("")), "NaN");
  EXPECT_EQ(obs::prometheus_number(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::prometheus_number(-std::numeric_limits<double>::infinity()),
            "-Inf");
}

TEST(PrometheusNumber, RoundTripsExactly) {
  for (const double v : {0.0, 1.0, -2.5, 0.1, 1e-300, 6.02214076e23,
                         123456789.123456789}) {
    const std::string s = obs::prometheus_number(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

// ------------------------------------------------------------- counters

TEST(PrometheusRender, CounterGetsTotalSuffixAndTypeHeader) {
  obs::MetricsSnapshot snap;
  snap.counters.emplace_back("analysis.monitor.alarms", 3u);
  const std::string out = render(snap);
  EXPECT_NE(out.find("# TYPE psa_analysis_monitor_alarms_total counter"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("psa_analysis_monitor_alarms_total 3\n"),
            std::string::npos)
      << out;
}

TEST(PrometheusRender, GaugeKeepsBareNameAndValue) {
  obs::MetricsSnapshot snap;
  snap.gauges.emplace_back("monitord.z_score", 41.25);
  const std::string out = render(snap);
  EXPECT_NE(out.find("# TYPE psa_monitord_z_score gauge"), std::string::npos);
  EXPECT_NE(out.find("psa_monitord_z_score 41.25\n"), std::string::npos);
}

// ------------------------------------------------------------ histogram

TEST(PrometheusRender, BucketsAreCumulativeAndClosedByInf) {
  // Registry snapshots carry per-bucket counts; the exposition format wants
  // cumulative ones. bounds {1, 2} with observations {0.5, 1.5, 1.5, 5}:
  // per-bucket [1, 2, 1] → cumulative le="1"=1, le="2"=3, le="+Inf"=4.
  obs::Histogram::Snapshot h;
  h.count = 4;
  h.sum = 0.5 + 1.5 + 1.5 + 5.0;
  h.bounds = {1.0, 2.0};
  h.buckets = {1, 2, 1};
  obs::MetricsSnapshot snap;
  snap.histograms.emplace_back("dsp.sweep_us", h);

  const std::string out = render(snap);
  EXPECT_NE(out.find("# TYPE psa_dsp_sweep_us histogram"), std::string::npos);
  EXPECT_NE(out.find("psa_dsp_sweep_us_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("psa_dsp_sweep_us_bucket{le=\"2\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("psa_dsp_sweep_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("psa_dsp_sweep_us_count 4\n"), std::string::npos);
  EXPECT_NE(out.find("psa_dsp_sweep_us_sum 8.5\n"), std::string::npos);

  // +Inf bucket must equal _count — the invariant promtool checks.
  // (Asserted implicitly by the two exact-line expectations above.)
}

TEST(PrometheusRender, EmptyHistogramStillWellFormed) {
  obs::Histogram::Snapshot h;
  h.bounds = {10.0};
  h.buckets = {0, 0};
  obs::MetricsSnapshot snap;
  snap.histograms.emplace_back("afe.idle", h);
  const std::string out = render(snap);
  EXPECT_NE(out.find("psa_afe_idle_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("psa_afe_idle_count 0\n"), std::string::npos);
}

TEST(PrometheusRender, EveryLineParses) {
  // Minimal syntax check over a mixed snapshot: every non-comment line is
  // "<name>[{labels}] <value>" with a grammar-legal name.
  obs::Histogram::Snapshot h;
  h.count = 1;
  h.sum = 2.5;
  h.bounds = {1.0};
  h.buckets = {0, 1};
  obs::MetricsSnapshot snap;
  snap.counters.emplace_back("a.b", 1u);
  snap.gauges.emplace_back("c-d", -0.5);
  snap.histograms.emplace_back("e.f", h);

  std::istringstream lines(render(snap));
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    if (const std::size_t brace = name.find('{'); brace != std::string::npos) {
      name = name.substr(0, brace);
    }
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_' || name[0] == ':')
        << line;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    // The value must parse as a double (or a non-finite literal).
    const std::string value = line.substr(sp + 1);
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      EXPECT_NO_THROW((void)std::stod(value)) << line;
    }
  }
}

}  // namespace
}  // namespace psa
