// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole families of inputs, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/refine.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "em/dipole.hpp"
#include "fault/fault.hpp"
#include "layout/floorplan.hpp"
#include "psa/coil.hpp"
#include "psa/programmer.hpp"
#include "psa/selftest.hpp"
#include "psa/tgate.hpp"
#include "dsp/fixed_fft.hpp"

namespace psa {
namespace {

// ------------------------------------------------- FFT round-trip vs size

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, RestoresRandomSignal) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<dsp::cplx> data(n);
  std::vector<dsp::cplx> orig(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {rng.gaussian(), rng.gaussian()};
    orig[i] = data[i];
  }
  dsp::fft_inplace(data);
  dsp::ifft_inplace(data);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(data[i] - orig[i]));
  }
  EXPECT_LT(worst, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024, 4096,
                                           16384));

// ------------------------------------------- sine amplitude across windows

class WindowAccuracy
    : public ::testing::TestWithParam<std::tuple<dsp::WindowKind, double>> {};

TEST_P(WindowAccuracy, OnBinAmplitudeWithinWindowTolerance) {
  const auto [window, tol] = GetParam();
  const double fs = 1.0e6;
  const std::size_t n = 4096;
  const double f = fs * 256.0 / static_cast<double>(n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.7 * std::sin(kTwoPi * f * static_cast<double>(i) / fs);
  }
  const dsp::Spectrum s = dsp::amplitude_spectrum(x, fs, window);
  const std::size_t pk = s.peak_bin(f - 2000.0, f + 2000.0);
  EXPECT_NEAR(s.magnitude[pk], 1.7, tol);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, WindowAccuracy,
    ::testing::Values(
        std::make_tuple(dsp::WindowKind::kRectangular, 1e-6),
        std::make_tuple(dsp::WindowKind::kHann, 1e-3),
        std::make_tuple(dsp::WindowKind::kHamming, 1e-2),
        std::make_tuple(dsp::WindowKind::kBlackmanHarris, 1e-3),
        std::make_tuple(dsp::WindowKind::kFlatTop, 1e-3)));

// -------------------------------------------- dipole kernel sign boundary

class DipoleSignFlip : public ::testing::TestWithParam<double> {};

TEST_P(DipoleSignFlip, FlipsExactlyAtSqrt2H) {
  const double h = GetParam();
  const double flip = std::sqrt(2.0) * h;
  EXPECT_GT(em::dipole_bz(flip * 0.98, h), 0.0);
  EXPECT_LT(em::dipole_bz(flip * 1.02, h), 0.0);
  // And the optimal disk radius tracks it.
  EXPECT_NEAR(em::optimal_disk_radius_um(h), flip, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Heights, DipoleSignFlip,
                         ::testing::Values(5.0, 20.0, 40.0, 100.0, 500.0));

// ----------------------------------------------- disk flux peak vs height

class DiskFluxPeak : public ::testing::TestWithParam<double> {};

TEST_P(DiskFluxPeak, MaximumAtOptimalRadius) {
  const double h = GetParam();
  const double r_opt = em::optimal_disk_radius_um(h);
  const double peak = em::disk_flux(r_opt, h);
  for (double factor : {0.25, 0.5, 0.8, 1.25, 2.0, 4.0}) {
    EXPECT_GE(peak, em::disk_flux(r_opt * factor, h))
        << "h=" << h << " factor=" << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, DiskFluxPeak,
                         ::testing::Values(10.0, 40.0, 120.0, 600.0));

// ------------------------------------------------ T-gate monotonicity grid

class TGateMonotonic
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TGateMonotonic, ResistanceMonotoneInVoltageAndTemperature) {
  const auto [vdd, temp_c] = GetParam();
  const sensor::TGate tg;
  const double t_k = celsius_to_kelvin(temp_c);
  // Raising Vdd lowers R_on; raising T raises it.
  EXPECT_GT(tg.r_on(vdd, t_k), tg.r_on(vdd + 0.05, t_k));
  EXPECT_LT(tg.r_on(vdd, t_k), tg.r_on(vdd, t_k + 10.0));
  EXPECT_GT(tg.r_on(vdd, t_k), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TGateMonotonic,
    ::testing::Combine(::testing::Values(0.8, 0.9, 1.0, 1.1, 1.2),
                       ::testing::Values(-40.0, 0.0, 25.0, 85.0, 125.0)));

// ------------------------------------------- every standard sensor's coil

class StandardSensorProperties : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(StandardSensorProperties, ValidSized176MicronLoop) {
  const std::size_t k = GetParam();
  const sensor::SensorProgram p = sensor::CoilProgrammer::standard_sensor(k);
  const sensor::CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok()) << sensor::to_string(ex.error);
  EXPECT_EQ(ex.path->switch_count(), 4u);
  // Enclosed area ≈ 176 µm x 176 µm (plus the thin pad run-out sliver).
  const double area = std::fabs(signed_area(ex.path->polyline()));
  EXPECT_GT(area, 176.0 * 176.0 * 0.95);
  EXPECT_LT(area, 176.0 * 176.0 * 1.35);
  // Electrical sanity at nominal conditions.
  const sensor::TGate tg;
  const double r = ex.path->resistance_ohm(tg, 1.0, 300.0);
  EXPECT_GT(r, 4.0 * 34.0);
  EXPECT_LT(r, 4.0 * 34.0 + 100.0);
}

INSTANTIATE_TEST_SUITE_P(All16, StandardSensorProperties,
                         ::testing::Range<std::size_t>(0, 16));

// ------------------------------------------------- sensor overlap network

class SensorOverlap
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SensorOverlap, AdjacencyRule) {
  const auto [a, b] = GetParam();
  if (a == b) return;
  const Rect ra = layout::standard_sensor_region(a);
  const Rect rb = layout::standard_sensor_region(b);
  const int col_d = std::abs(static_cast<int>(a % 4) - static_cast<int>(b % 4));
  const int row_d = std::abs(static_cast<int>(a / 4) - static_cast<int>(b / 4));
  const double ov = overlap_fraction(ra, rb);
  if (col_d + row_d == 1) {
    EXPECT_NEAR(ov, 1.0 / 3.0, 1e-9);  // side neighbours share 33 %
  } else if (col_d == 1 && row_d == 1) {
    EXPECT_NEAR(ov, 1.0 / 9.0, 1e-9);  // diagonal neighbours share 1/9
  } else if (col_d >= 2 || row_d >= 2) {
    EXPECT_LT(ov, 1e-9);  // non-adjacent sensors are disjoint
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SensorOverlap,
    ::testing::Combine(::testing::Range<std::size_t>(0, 16),
                       ::testing::Range<std::size_t>(0, 16)));

// ----------------------------------------------- spiral winding vs turns

class SpiralWinding : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpiralWinding, CentreWindingEqualsTurnCount) {
  const std::size_t turns = GetParam();
  const sensor::SensorProgram p =
      sensor::CoilProgrammer::spiral(4, 4, 30, 30, turns);
  const sensor::CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok()) << sensor::to_string(ex.error);
  const Point centre = sensor::switch_position(17, 17);
  EXPECT_EQ(std::abs(winding_number(ex.path->polyline(), centre)),
            static_cast<int>(turns));
  // Resistance grows with each turn's four switches.
  EXPECT_EQ(ex.path->switch_count(), 4 * turns);
}

INSTANTIATE_TEST_SUITE_P(Turns, SpiralWinding,
                         ::testing::Range<std::size_t>(1, 13));

// --------------------------------------- rect loop area tracks its span

class RectLoopArea
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RectLoopArea, EnclosedAreaMatchesSpan) {
  const auto [rows, cols] = GetParam();
  const sensor::SensorProgram p =
      sensor::CoilProgrammer::rect_loop(2, 2, 2 + rows, 2 + cols);
  const sensor::CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const double expect =
      (static_cast<double>(rows) * 16.0) * (static_cast<double>(cols) * 16.0);
  const double area = std::fabs(signed_area(ex.path->polyline()));
  // Pad run-out adds a sliver; the loop area dominates.
  EXPECT_GT(area, expect * 0.95);
  EXPECT_LT(area, expect + 16.0 * 576.0);
}

INSTANTIATE_TEST_SUITE_P(
    Spans, RectLoopArea,
    ::testing::Combine(::testing::Values(2, 5, 11, 20, 33),
                       ::testing::Values(1, 5, 11, 20, 33)));

// ---------------------------------------- extraction fuzz: never crashes

class ExtractionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractionFuzz, RandomMatricesAlwaysClassified) {
  // Arbitrary switch soup: extraction must terminate and return a verdict
  // (valid coil or a specific error), never crash or hang, and a returned
  // path must be electrically sane.
  Rng rng(GetParam());
  sensor::SwitchMatrix sw;
  const std::size_t n_on = 3 + rng.below(40);
  for (std::size_t i = 0; i < n_on; ++i) {
    sw.set(rng.below(sensor::kWires), rng.below(sensor::kWires), true);
  }
  const auto pos = sensor::hwire(rng.below(sensor::kWires));
  auto neg = sensor::hwire(rng.below(sensor::kWires));
  if (neg == pos) neg = sensor::hwire((pos.index + 1) % sensor::kWires);
  const sensor::CoilExtraction ex = sensor::extract_coil(sw, pos, neg);
  if (ex.ok()) {
    ASSERT_TRUE(ex.path.has_value());
    EXPECT_GE(ex.path->switch_count(), 3u);
    EXPECT_GT(ex.path->wire_length_um(), 0.0);
    const sensor::TGate tg;
    EXPECT_GT(ex.path->resistance_ohm(tg, 1.0, 300.0), 0.0);
  } else {
    EXPECT_NE(ex.error, sensor::CoilError::kNone);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionFuzz,
                         ::testing::Range<std::uint64_t>(0, 64));

// ---------------------------------------- programmed-coil fault fuzz

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, SingleFaultNeverYieldsSilentlyWrongCoil) {
  // Inject one random fault into a valid sensor program. Either the fault
  // is harmless (touches unused wires -> still a valid identical-length
  // coil, or a stub) or it must surface as an open/short — never as a
  // "valid" coil with different geometry.
  Rng rng(GetParam());
  const std::size_t k = rng.below(16);
  sensor::SensorProgram p = sensor::CoilProgrammer::standard_sensor(k);
  const sensor::CoilExtraction clean = p.extract();
  ASSERT_TRUE(clean.ok());
  const double clean_len = clean.path->wire_length_um();

  const std::size_t row = rng.below(sensor::kWires);
  const std::size_t col = rng.below(sensor::kWires);
  if ((rng() & 1) != 0) {
    p.switches.inject_stuck_open(row, col);
  } else {
    p.switches.inject_stuck_closed(row, col);
  }
  const sensor::CoilExtraction faulty = p.extract();
  if (faulty.ok()) {
    EXPECT_NEAR(faulty.path->wire_length_um(), clean_len, 1e-9)
        << "sensor " << k << " fault at (" << row << "," << col << ")";
    EXPECT_EQ(faulty.path->switch_count(), clean.path->switch_count());
  } else {
    EXPECT_NE(faulty.error, sensor::CoilError::kNone);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Range<std::uint64_t>(100, 164));

// ------------------------------- array-fault masks over random programs

class ArrayFaultMaskFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrayFaultMaskFuzz, ExtractionTerminatesAndSelfTestCatchesBreaks) {
  // A random pile of array faults over a random coil program: extraction
  // must terminate with a verdict (never crash or hang), and any fault that
  // breaks the coil must raise the self-test alarm — a damaged array is
  // allowed to fail, never to fail silently.
  Rng rng(GetParam());
  fault::FaultPlanParams knobs;
  knobs.stuck_open = rng.below(6);
  knobs.stuck_closed = rng.below(4);
  knobs.dead_rows = rng.below(2);
  knobs.dead_columns = rng.below(2);
  knobs.drift_cells = rng.below(4);
  knobs.resistance_scale = 1.0 + rng.uniform(0.0, 0.6);
  const fault::FaultPlan plan = fault::make_plan(knobs, GetParam() ^ 0xF00D);
  const sensor::ArrayFaults faults = plan.array_faults();

  sensor::SensorProgram p = [&] {
    switch (rng.below(3)) {
      case 0:
        return sensor::CoilProgrammer::standard_sensor(rng.below(16));
      case 1: {
        const std::size_t r0 = rng.below(30);
        const std::size_t c0 = rng.below(30);
        return sensor::CoilProgrammer::rect_loop(
            r0, c0, r0 + 2 + rng.below(4), c0 + 1 + rng.below(5));
      }
      default:
        return analysis::quadrant_program(rng.below(16), rng.below(2),
                                          rng.below(2));
    }
  }();
  const sensor::SelfTestEntry checked =
      sensor::SelfTest().test_program(p, faults, "fuzz");

  faults.inject_into(p.switches);
  const sensor::CoilExtraction ex = p.extract();
  if (ex.ok()) {
    ASSERT_TRUE(ex.path.has_value());
    EXPECT_GT(ex.path->wire_length_um(), 0.0);
    const sensor::TGate tg;
    EXPECT_GT(ex.path->resistance_ohm(tg, 1.0, 300.0), 0.0);
  } else {
    EXPECT_NE(ex.error, sensor::CoilError::kNone);
    EXPECT_FALSE(checked.pass)
        << "broken coil passed self-test: " << sensor::to_string(ex.error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayFaultMaskFuzz,
                         ::testing::Range<std::uint64_t>(200, 280));

// ---------------------------------------- Q15 FFT accuracy across sizes

class FixedFftAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FixedFftAccuracy, StrongBinsWithinFivePercent) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<double> x(n);
  const double f1 = static_cast<double>(n / 8);
  const double f2 = static_cast<double>(n / 3);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    x[i] = 0.45 * std::sin(kTwoPi * f1 * t) +
           0.25 * std::cos(kTwoPi * f2 * t) + 0.005 * rng.gaussian();
  }
  EXPECT_LT(dsp::fixed_fft_relative_error(x, 1.0), 0.05) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FixedFftAccuracy,
                         ::testing::Values(256, 1024, 4096, 16384));

}  // namespace
}  // namespace psa
