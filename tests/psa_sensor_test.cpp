// The PSA itself: lattice/switch matrix, coil extraction and validation
// (including tamper scenarios), programmer configurations, T-gate
// electrical model, decoder and channels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "psa/channels.hpp"
#include "psa/coil.hpp"
#include "psa/lattice.hpp"
#include "psa/programmer.hpp"
#include "psa/tgate.hpp"

namespace psa::sensor {
namespace {

TEST(Lattice, Has1296Switches) {
  EXPECT_EQ(kWires, 36u);
  EXPECT_EQ(kSwitches, 1296u);
}

TEST(Lattice, SwitchPositions) {
  EXPECT_EQ(switch_position(0, 0), (Point{8.0, 8.0}));
  EXPECT_EQ(switch_position(35, 35), (Point{568.0, 568.0}));
  EXPECT_EQ(switch_position(2, 5), (Point{88.0, 40.0}));
  EXPECT_THROW(switch_position(36, 0), std::out_of_range);
}

TEST(SwitchMatrix, SetClearCount) {
  SwitchMatrix sw;
  EXPECT_EQ(sw.count_on(), 0u);
  sw.set(3, 4, true);
  sw.set(10, 20, true);
  EXPECT_TRUE(sw.commanded(3, 4));
  EXPECT_EQ(sw.count_on(), 2u);
  sw.set(3, 4, false);
  EXPECT_EQ(sw.count_on(), 1u);
  sw.clear();
  EXPECT_EQ(sw.count_on(), 0u);
  EXPECT_THROW(sw.set(36, 0, true), std::out_of_range);
}

TEST(SwitchMatrix, FaultsOverrideCommands) {
  SwitchMatrix sw;
  sw.set(1, 1, true);
  sw.inject_stuck_open(1, 1);
  EXPECT_TRUE(sw.commanded(1, 1));
  EXPECT_FALSE(sw.effective(1, 1));
  sw.inject_stuck_closed(2, 2);
  EXPECT_TRUE(sw.effective(2, 2));
  EXPECT_TRUE(sw.has_faults());
  sw.clear_faults();
  EXPECT_TRUE(sw.effective(1, 1));
  EXPECT_FALSE(sw.effective(2, 2));
}

TEST(WireResistance, ScalesWithLength) {
  EXPECT_NEAR(wire_resistance_ohm(16.0), 0.4, 1e-12);
  EXPECT_NEAR(wire_resistance_ohm(1000.0), 25.0, 1e-12);
}

// ------------------------------------------------------------- extraction

TEST(Extraction, RectLoopIsValid) {
  const SensorProgram p = CoilProgrammer::rect_loop(4, 4, 15, 15);
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok()) << to_string(ex.error);
  EXPECT_EQ(ex.path->switch_count(), 4u);
  EXPECT_EQ(ex.path->stub_count, 0u);
  // Vertices: pad+, 4 switch points, pad-.
  EXPECT_EQ(ex.path->vertices.size(), 6u);
}

TEST(Extraction, OpenCircuitDetected) {
  SensorProgram p = CoilProgrammer::rect_loop(4, 4, 15, 15);
  p.switches.set(15, 4, false);  // remove one corner
  const CoilExtraction ex = p.extract();
  EXPECT_EQ(ex.error, CoilError::kOpenCircuit);
}

TEST(Extraction, ShortCircuitDetected) {
  SensorProgram p = CoilProgrammer::rect_loop(4, 4, 15, 15);
  p.switches.set(10, 4, true);  // extra switch on a used vertical wire
  const CoilExtraction ex = p.extract();
  EXPECT_EQ(ex.error, CoilError::kShortCircuit);
}

TEST(Extraction, StuckOpenFaultSurfacesAsOpen) {
  // Section IV: a malicious-foundry stuck-open T-gate makes the self-test
  // return an open-circuit verdict.
  SensorProgram p = CoilProgrammer::rect_loop(4, 4, 15, 15);
  p.switches.inject_stuck_open(4, 4);
  EXPECT_EQ(p.extract().error, CoilError::kOpenCircuit);
}

TEST(Extraction, StuckClosedFaultSurfacesAsShort) {
  SensorProgram p = CoilProgrammer::rect_loop(4, 4, 15, 15);
  p.switches.inject_stuck_closed(8, 4);  // on a used vertical wire
  EXPECT_EQ(p.extract().error, CoilError::kShortCircuit);
}

TEST(Extraction, StubOnUnusedWiresIsCountedNotFatal) {
  SensorProgram p = CoilProgrammer::rect_loop(4, 4, 15, 15);
  p.switches.set(20, 25, true);  // switch touching only unused wires
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex.path->stub_count, 1u);
}

TEST(Extraction, BadTerminals) {
  const SwitchMatrix sw;
  EXPECT_EQ(extract_coil(sw, vwire(0), hwire(1)).error,
            CoilError::kBadTerminal);
  EXPECT_EQ(extract_coil(sw, hwire(3), hwire(3)).error,
            CoilError::kBadTerminal);
}

TEST(Extraction, EmptyMatrixIsOpen) {
  const SwitchMatrix sw;
  EXPECT_EQ(extract_coil(sw, hwire(0), hwire(1)).error,
            CoilError::kOpenCircuit);
}

// -------------------------------------------------------------- programmer

TEST(Programmer, RectLoopGeometry) {
  const SensorProgram p = CoilProgrammer::rect_loop(0, 0, 11, 11);
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  // Enclosed area ~ (11 pitches)^2 = 176 µm square.
  const double area = std::fabs(signed_area(ex.path->polyline()));
  EXPECT_GT(area, 176.0 * 176.0 * 0.9);
}

TEST(Programmer, RejectsBadSpans) {
  EXPECT_THROW(CoilProgrammer::rect_loop(0, 0, 1, 5), std::invalid_argument);
  EXPECT_THROW(CoilProgrammer::rect_loop(0, 5, 5, 5), std::invalid_argument);
  EXPECT_THROW(CoilProgrammer::rect_loop(0, 0, 36, 5), std::invalid_argument);
}

TEST(Programmer, SpiralTurnsAreValidAndWound) {
  for (std::size_t turns = 1; turns <= 5; ++turns) {
    const SensorProgram p = CoilProgrammer::spiral(10, 10, 22, 22, turns);
    const CoilExtraction ex = p.extract();
    ASSERT_TRUE(ex.ok()) << "turns=" << turns << ": " << to_string(ex.error);
    EXPECT_EQ(ex.path->switch_count(), 4 * turns);
    // Winding number at the spiral centre equals the turn count.
    const Point centre = switch_position(16, 16);
    EXPECT_EQ(std::abs(winding_number(ex.path->polyline(), centre)),
              static_cast<int>(turns));
  }
}

TEST(Programmer, SpiralRejectsTooManyTurns) {
  EXPECT_THROW(CoilProgrammer::spiral(10, 10, 15, 15, 3),
               std::invalid_argument);
}

TEST(Programmer, Fig1bTwoTurnExample) {
  const SensorProgram p = CoilProgrammer::fig1b_two_turn();
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const Point centre = switch_position(17, 17);
  EXPECT_EQ(std::abs(winding_number(ex.path->polyline(), centre)), 2);
}

TEST(Programmer, SixteenStandardSensorsAllValid) {
  for (std::size_t k = 0; k < 16; ++k) {
    const SensorProgram p = CoilProgrammer::standard_sensor(k);
    const CoilExtraction ex = p.extract();
    ASSERT_TRUE(ex.ok()) << "sensor " << k;
    // The coil lies within the sensor's nominal region (±1 pitch slack on
    // each side), ignoring the pad run-out to the right edge.
    const Rect region = layout::standard_sensor_region(k);
    for (const Point& v : ex.path->vertices) {
      if (v.x >= layout::kDieSideUm) continue;  // pad points
      EXPECT_GE(v.x, region.lo.x - 16.0);
      EXPECT_GE(v.y, region.lo.y - 16.0);
      EXPECT_LE(v.y, region.hi.y + 16.0);
    }
  }
  EXPECT_THROW(CoilProgrammer::standard_sensor(16), std::out_of_range);
}

TEST(Programmer, WholeDieCoilSpansLattice) {
  const SensorProgram p = CoilProgrammer::whole_die_coil();
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const double area = std::fabs(signed_area(ex.path->polyline()));
  EXPECT_GT(area, 540.0 * 540.0);
}

TEST(Decoder, MapsCodesToStandardSensors) {
  for (std::uint8_t code = 0; code < 16; ++code) {
    const SensorProgram via_decoder = ConfigDecoder::decode(code);
    const SensorProgram direct = CoilProgrammer::standard_sensor(code);
    EXPECT_EQ(via_decoder.term_pos, direct.term_pos);
    EXPECT_EQ(via_decoder.term_neg, direct.term_neg);
    EXPECT_EQ(via_decoder.switches.count_on(), direct.switches.count_on());
  }
  // Codes wrap on the low nibble (combinational decode of 4 pins).
  EXPECT_EQ(ConfigDecoder::decode(0x1F).term_pos,
            CoilProgrammer::standard_sensor(15).term_pos);
}

// ------------------------------------------------------------------ T-gate

TEST(TGate, NominalResistanceIs34Ohm) {
  const TGate tg;
  EXPECT_NEAR(tg.r_on(1.0, 300.0), 34.0, 1e-9);
}

TEST(TGate, ResistanceFallsWithVoltage) {
  const TGate tg;
  EXPECT_GT(tg.r_on(0.8, 300.0), tg.r_on(1.0, 300.0));
  EXPECT_GT(tg.r_on(1.0, 300.0), tg.r_on(1.2, 300.0));
}

TEST(TGate, VoltageSwingWithinPaperEnvelope) {
  // Section VI-C-1: ~4 dB impedance change over 0.8-1.2 V for a sensor.
  const TGate tg;
  const SensorProgram p = CoilProgrammer::standard_sensor(10);
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const double z_lo = ex.path->resistance_ohm(tg, 0.8, 300.0);
  const double z_hi = ex.path->resistance_ohm(tg, 1.2, 300.0);
  const double swing_db = amplitude_db(z_lo / z_hi);
  EXPECT_GT(swing_db, 2.0);
  EXPECT_LT(swing_db, 6.0);
}

TEST(TGate, TemperatureSwingWithinPaperEnvelope) {
  // Section VI-C-2: impedance stable within ~4 dB from -40 to 125 °C.
  const TGate tg;
  const SensorProgram p = CoilProgrammer::standard_sensor(10);
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const double z_cold =
      ex.path->resistance_ohm(tg, 1.0, celsius_to_kelvin(-40.0));
  const double z_hot =
      ex.path->resistance_ohm(tg, 1.0, celsius_to_kelvin(125.0));
  const double swing_db = amplitude_db(z_hot / z_cold);
  EXPECT_GT(swing_db, 1.0);
  EXPECT_LT(swing_db, 5.0);
}

TEST(TGate, RejectsNonPhysicalOperatingPoints) {
  const TGate tg;
  EXPECT_THROW(tg.r_on(0.3, 300.0), std::invalid_argument);
  EXPECT_THROW(tg.r_on(1.0, -5.0), std::invalid_argument);
}

TEST(TGate, LeakagePowerTiny) {
  const TGate tg;
  // The paper: PSA power is dominated by leakage and negligible overall.
  EXPECT_LT(tg.leakage_power(1.2) * 1296.0, 1e-3);  // < 1 mW for all gates
}

// ------------------------------------------------------------- electrical

TEST(CoilPath, ResistanceBreakdown) {
  const TGate tg;
  const SensorProgram p = CoilProgrammer::standard_sensor(10);
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const double r = ex.path->resistance_ohm(tg, 1.0, 300.0);
  const double wires = wire_resistance_ohm(ex.path->wire_length_um());
  EXPECT_NEAR(r, wires + 4.0 * 34.0, 1e-9);
}

TEST(CoilPath, ImpedanceRisesWithFrequency) {
  const TGate tg;
  const SensorProgram p = CoilProgrammer::standard_sensor(10);
  const CoilExtraction ex = p.extract();
  ASSERT_TRUE(ex.ok());
  const double z_dc = ex.path->impedance_ohm(tg, 1.0, 300.0, 0.0);
  const double z_hf = ex.path->impedance_ohm(tg, 1.0, 300.0, 500.0e6);
  EXPECT_GT(z_hf, z_dc);
  EXPECT_NEAR(z_dc, ex.path->resistance_ohm(tg, 1.0, 300.0), 1e-9);
}

// ---------------------------------------------------------------- channels

TEST(Channels, DefaultGroupingCoversAllSensors) {
  const ChannelMap map;
  std::array<int, 4> counts{};
  for (std::size_t s = 0; s < 16; ++s) {
    const std::size_t ch = map.channel_of(s);
    ASSERT_LT(ch, kOutputChannels);
    ++counts[ch];
  }
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Channels, PaperExampleGroup) {
  // Fig. 2: sensors 0,1,5,6 share the sensor1 channel.
  const ChannelMap map;
  EXPECT_EQ(map.channel_of(0), map.channel_of(1));
  EXPECT_EQ(map.channel_of(0), map.channel_of(5));
  EXPECT_EQ(map.channel_of(0), map.channel_of(6));
  EXPECT_NE(map.channel_of(0), map.channel_of(2));
}

TEST(Channels, RoundsCoverEverySensorOnce) {
  const ChannelMap map;
  std::array<bool, 16> seen{};
  for (std::size_t r = 0; r < map.scan_rounds(); ++r) {
    for (std::size_t s : map.round_sensors(r)) {
      EXPECT_FALSE(seen[s]);
      seen[s] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Channels, NamesAndValidation) {
  EXPECT_EQ(ChannelMap::channel_name(0), "sensor1+/-");
  EXPECT_EQ(ChannelMap::channel_name(3), "sensor4+/-");
  EXPECT_THROW(ChannelMap::channel_name(4), std::out_of_range);
  // Duplicate sensor in a custom grouping is rejected.
  EXPECT_THROW(ChannelMap({{{{0, 1, 2, 3}},
                            {{3, 5, 6, 7}},
                            {{8, 9, 10, 11}},
                            {{12, 13, 14, 15}}}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace psa::sensor
