// roc_harness_test.cpp — rank-AUC property tests plus a smoke-sized ROC
// sweep of the whole detector bank: every detector must clear its committed
// AUC floor on the clean 4-Trojan sweep and the score-fused ensemble must
// be at least as good as the best single detector. Runs in the TSan matrix,
// so the sweep is deliberately small (light pipeline, two scales).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "analysis/detector_bank.hpp"
#include "analysis/roc.hpp"
#include "common/rng.hpp"
#include "fixtures.hpp"

namespace psa::tests {
namespace {

using analysis::fpr_at_tpr;
using analysis::rank_auc;

// ------------------------------------------------------ rank-AUC properties

TEST(RankAuc, PerfectSeparationIsExactlyOne) {
  Rng rng(kRngStreamBase + 61);
  std::vector<double> neg, pos;
  for (int i = 0; i < 50; ++i) {
    neg.push_back(rng.uniform());
    pos.push_back(2.0 + rng.uniform());
  }
  EXPECT_DOUBLE_EQ(rank_auc(neg, pos), 1.0);
  EXPECT_DOUBLE_EQ(rank_auc(pos, neg), 0.0);  // inverted labels
}

TEST(RankAuc, ShuffledLabelsNearHalf) {
  // Both classes drawn from one distribution: chance-level ranking.
  Rng rng(kRngStreamBase + 62);
  std::vector<double> neg, pos;
  for (int i = 0; i < 400; ++i) {
    neg.push_back(rng.gaussian());
    pos.push_back(rng.gaussian());
  }
  EXPECT_NEAR(rank_auc(neg, pos), 0.5, 0.08);
}

TEST(RankAuc, TiesGetHalfCreditExactly) {
  // neg = {0,0,1,1}, pos = {1,1,2,2}:
  //   each pos==1 outranks 2 negatives and ties 2 -> 3.0
  //   each pos==2 outranks all 4              -> 4.0
  //   U = 2*3 + 2*4 = 14 over 16 pairs.
  const std::vector<double> neg{0.0, 0.0, 1.0, 1.0};
  const std::vector<double> pos{1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(rank_auc(neg, pos), 14.0 / 16.0);
  // All-identical scores are pure chance, exactly 1/2.
  const std::vector<double> same{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(rank_auc(same, same), 0.5);
}

TEST(RankAuc, InvariantToInputOrder) {
  const std::vector<double> neg{5.0, 1.0, 3.0, 3.0, 2.0};
  const std::vector<double> pos{3.0, 6.0, 3.0, 4.0};
  const double a = rank_auc(neg, pos);
  std::vector<double> neg2(neg.rbegin(), neg.rend());
  std::vector<double> pos2(pos.rbegin(), pos.rend());
  EXPECT_DOUBLE_EQ(rank_auc(neg2, pos2), a);
}

TEST(RankAuc, EmptyInputsScoreZero) {
  const std::vector<double> one{1.0};
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(rank_auc(none, one), 0.0);
  EXPECT_DOUBLE_EQ(rank_auc(one, none), 0.0);
}

TEST(RankAuc, RocFromScoresUsesRankAuc) {
  // Tied scores across classes: the naive threshold-sweep trapezoid loses
  // the diagonal segment; the rank statistic keeps it.
  const std::vector<double> neg{0.0, 0.0, 1.0, 1.0};
  const std::vector<double> pos{1.0, 1.0, 2.0, 2.0};
  const analysis::RocAnalysis roc =
      analysis::roc_from_scores(neg, pos, 0.0);
  EXPECT_DOUBLE_EQ(roc.auc, rank_auc(neg, pos));
}

TEST(FprAtTpr, KnownOperatingPoints) {
  const std::vector<double> neg{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pos{3.5, 4.5, 5.0, 6.0};
  // Full TPR needs thr <= 3.5; negatives >= 3.5 is exactly {4.0}.
  EXPECT_DOUBLE_EQ(fpr_at_tpr(neg, pos, 1.0), 0.25);
  // 75% TPR needs the top 3 positives (thr = 4.5): no negative reaches it.
  EXPECT_DOUBLE_EQ(fpr_at_tpr(neg, pos, 0.75), 0.0);
  EXPECT_DOUBLE_EQ(fpr_at_tpr(neg, pos, 0.0), 0.0);
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(fpr_at_tpr(none, pos, 0.5), 1.0);
}

// ------------------------------------------------- detector-bank ROC smoke

/// Committed per-detector AUC floors on the clean smoke sweep. These are
/// regression gates, not aspirations — but note the sweep is only 4
/// baselines x 8 Trojan runs (32 rank pairs), so one inverted pair costs
/// ~0.03 AUC. Floors sit a couple of pairs below the measured values.
const std::map<std::string, double>& auc_floors() {
  static const std::map<std::string, double> floors = {
      {"zscore", 0.90},
      {"flatness", 0.70},
      {"crossscale", 0.80},
      {"reconerr", 0.70},
  };
  return floors;
}

TEST(RocHarnessSmoke, EveryDetectorClearsItsFloorAndEnsembleWins) {
  const sim::ChipSimulator chip = make_chip();
  analysis::Pipeline pipeline(chip, light_config());
  const sim::Scenario normal = sim::Scenario::baseline(kGoldenSeed);
  pipeline.enroll(normal);

  analysis::DetectorBank bank(pipeline, analysis::BankConfig{.scales = 2});
  bank.calibrate(normal);

  // Shared observations: every detector scores the same sweep.
  std::map<std::string, std::vector<double>> neg, pos;
  std::vector<double> ens_neg, ens_pos;
  const auto score_into = [&](const sim::Scenario& sc, bool positive) {
    const analysis::EnsembleVerdict v = bank.scan(sc);
    (positive ? ens_pos : ens_neg).push_back(v.score);
    for (const analysis::NamedVerdict& nv : v.parts) {
      ((positive ? pos : neg)[nv.name]).push_back(nv.verdict.score);
    }
  };
  for (const std::uint64_t s : {101u, 202u, 303u, 404u}) {
    score_into(sim::Scenario::baseline(kGoldenSeed + s), false);
  }
  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT1AmCarrier, trojan::TrojanKind::kT2KeyLeak,
        trojan::TrojanKind::kT3CdmaLeak, trojan::TrojanKind::kT4DoS}) {
    score_into(sim::Scenario::with_trojan(kind, kGoldenSeed), true);
    score_into(sim::Scenario::with_trojan(kind, kGoldenSeed + 77), true);
  }

  double best_single = 0.0;
  for (const auto& [name, floor] : auc_floors()) {
    ASSERT_TRUE(pos.count(name)) << name << " missing from the bank";
    const double auc = rank_auc(neg[name], pos[name]);
    EXPECT_GE(auc, floor) << "detector " << name << " AUC regressed";
    best_single = std::max(best_single, auc);
  }
  const double ens_auc = rank_auc(ens_neg, ens_pos);
  EXPECT_GE(ens_auc, best_single)
      << "score-fused ensemble must not lose to its best member";
}

}  // namespace
}  // namespace psa::tests
