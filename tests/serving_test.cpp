// serving_test.cpp — the detection-as-a-service path:
//
//   * ServingQueue concurrency contract: exactly-once execution under N
//     client threads, coalescing of identical keys, deterministic shed
//     accounting (shed counter == rejected submissions), and a stop() that
//     fulfils every queued waiter with 503. Runs under the TSan CI job like
//     every other test in the suite.
//   * Backpressure over real sockets: a full queue answers 429 with a
//     Retry-After header while the server keeps accepting.
//   * The golden-vector contract for POST /scan: the served scores_hex for
//     the four seed-42 Trojan scenarios must equal tests/golden/t*.golden
//     bit-for-bit — the serving path reuses the pipeline, it does not fork
//     it.
//   * POST /trace verdicts match a direct score_spectrum() call bit-exactly
//     through the JSON round-trip (%.17g + hex bit patterns).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "afe/spectrum_analyzer.hpp"
#include "fixtures.hpp"
#include "golden_common.hpp"
#include "net/serving.hpp"
#include "obs/obs.hpp"

namespace psa {
namespace {

// ----------------------------------------------------------- HTTP client

/// Blocking POST of `body` to 127.0.0.1:port; returns headers + body.
std::string http_post(std::uint16_t port, const std::string& target,
                      const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::ostringstream req;
  req << "POST " << target << " HTTP/1.1\r\nHost: localhost\r\n"
      << "Content-Type: application/json\r\nContent-Length: " << body.size()
      << "\r\n\r\n"
      << body;
  const std::string wire = req.str();
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& resp) {
  const std::size_t sep = resp.find("\r\n\r\n");
  return sep == std::string::npos ? "" : resp.substr(sep + 4);
}

/// `"field":` value extraction good enough for the known response shapes.
std::string json_field(const std::string& body, const std::string& field) {
  const std::size_t at = body.find("\"" + field + "\":");
  if (at == std::string::npos) return "";
  std::size_t start = at + field.size() + 3;
  std::size_t end = start;
  if (body[start] == '"') {
    ++start;
    end = body.find('"', start);
  } else if (body[start] == '[') {
    end = body.find(']', start);
    ++start;
  } else {
    end = body.find_first_of(",}", start);
  }
  return end == std::string::npos ? "" : body.substr(start, end - start);
}

/// Drop the `,"trace_id":"..."` field: a verdict body is a pure function
/// of the scenario EXCEPT for the id of the trace that produced it, which
/// is fresh per executed request by design.
std::string strip_trace_id(std::string body) {
  const std::string key = ",\"trace_id\":\"";
  const std::size_t at = body.find(key);
  if (at == std::string::npos) return body;
  const std::size_t end = body.find('"', at + key.size());
  if (end == std::string::npos) return body;
  body.erase(at, end + 1 - at);
  return body;
}

/// The "scores_hex" array as 16 hex words.
std::vector<std::string> scores_hex_of(const std::string& body) {
  std::vector<std::string> out;
  std::istringstream is(json_field(body, "scores_hex"));
  std::string word;
  while (std::getline(is, word, ',')) {
    out.push_back(word.substr(1, word.size() - 2));  // strip quotes
  }
  return out;
}

net::ServingResult ok_result(const std::string& body) {
  return net::ServingResult{200, "text/plain", body};
}

// ------------------------------------------------------ queue concurrency

TEST(ServingQueue, ExactlyOnceExecutionUnderConcurrentSubmitters) {
  net::ServingConfig cfg;
  cfg.queue_depth = 64;
  cfg.workers = 2;
  net::ServingQueue queue(cfg);

  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 4;
  std::array<std::atomic<int>, kThreads * kKeysPerThread> runs{};
  std::atomic<int> lost{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeysPerThread; ++k) {
        const int id = t * kKeysPerThread + k;
        auto ticket = queue.submit(
            "key-" + std::to_string(id),
            [&runs, id] {
              runs[static_cast<std::size_t>(id)].fetch_add(1);
              return ok_result("done-" + std::to_string(id));
            });
        if (!ticket) {
          lost.fetch_add(1);
          continue;
        }
        const net::ServingResult r = ticket->result.get();
        EXPECT_EQ(r.status, 200);
        EXPECT_EQ(r.body, "done-" + std::to_string(id));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Depth 64 >= 32 total distinct submissions: nothing shed, nothing lost,
  // every job ran exactly once.
  EXPECT_EQ(lost.load(), 0);
  EXPECT_EQ(queue.shed(), 0u);
  EXPECT_EQ(queue.coalesced(), 0u);
  EXPECT_EQ(queue.submitted(), static_cast<std::uint64_t>(kThreads * kKeysPerThread));
  EXPECT_EQ(queue.executed(), static_cast<std::uint64_t>(kThreads * kKeysPerThread));
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

/// Holds the queue's only worker inside a job until release() — the lever
/// every deterministic queue-state test below uses.
class GateJob {
 public:
  net::ServingQueue::Job job() {
    return [this] {
      started_.set_value();
      release_.get_future().wait();
      return ok_result("gated");
    };
  }
  void wait_started() { started_.get_future().wait(); }
  void release() { release_.set_value(); }

 private:
  std::promise<void> started_;
  std::promise<void> release_;
};

TEST(ServingQueue, CoalescesIdenticalKeysIntoOneExecution) {
  net::ServingConfig cfg;
  cfg.queue_depth = 8;
  cfg.workers = 1;
  net::ServingQueue queue(cfg);

  GateJob gate;
  auto gate_ticket = queue.submit("gate", gate.job());
  ASSERT_TRUE(gate_ticket.has_value());
  gate.wait_started();  // the one worker is now pinned inside the gate

  std::atomic<int> executions{0};
  std::vector<net::ServingQueue::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    auto t = queue.submit("same-scenario", [&executions] {
      executions.fetch_add(1);
      return ok_result("shared answer");
    });
    ASSERT_TRUE(t.has_value());
    tickets.push_back(*t);
  }
  EXPECT_FALSE(tickets[0].coalesced);  // first created the group
  for (int i = 1; i < 5; ++i) EXPECT_TRUE(tickets[static_cast<std::size_t>(i)].coalesced);

  gate.release();
  for (auto& t : tickets) EXPECT_EQ(t.result.get().body, "shared answer");
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(queue.coalesced(), 4u);
  EXPECT_EQ(queue.executed(), 2u);  // gate + the one coalesced group
}

TEST(ServingQueue, CoalesceOffRunsEverySubmissionSeparately) {
  net::ServingConfig cfg;
  cfg.queue_depth = 8;
  cfg.workers = 1;
  cfg.coalesce = false;
  net::ServingQueue queue(cfg);

  GateJob gate;
  auto gate_ticket = queue.submit("gate", gate.job());
  ASSERT_TRUE(gate_ticket.has_value());
  gate.wait_started();

  std::atomic<int> executions{0};
  std::vector<net::ServingQueue::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    auto t = queue.submit("same-scenario", [&executions] {
      executions.fetch_add(1);
      return ok_result("own answer");
    });
    ASSERT_TRUE(t.has_value());
    EXPECT_FALSE(t->coalesced);
    tickets.push_back(*t);
  }
  gate.release();
  for (auto& t : tickets) (void)t.result.get();
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(queue.coalesced(), 0u);
}

TEST(ServingQueue, FullQueueShedsDeterministically) {
  net::ServingConfig cfg;
  cfg.queue_depth = 2;
  cfg.workers = 1;
  cfg.coalesce = false;
  net::ServingQueue queue(cfg);

  GateJob gate;
  auto gate_ticket = queue.submit("gate", gate.job());
  ASSERT_TRUE(gate_ticket.has_value());
  gate.wait_started();

  // Fill the queue to its exact depth...
  auto a = queue.submit("a", [] { return ok_result("a"); });
  auto b = queue.submit("b", [] { return ok_result("b"); });
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  // ...then every further submission is shed, counted, and unexecuted.
  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    if (!queue.submit("overflow-" + std::to_string(i),
                      [] { return ok_result("never"); })) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(queue.shed(), 3u);

  gate.release();
  EXPECT_EQ(a->result.get().body, "a");
  EXPECT_EQ(b->result.get().body, "b");
  EXPECT_EQ(queue.shed(), 3u);  // draining executes nothing shed
  EXPECT_EQ(queue.executed(), 3u);
}

TEST(ServingQueue, RetryAfterHintScalesWithQueueDepthAndClamps) {
  net::ServingConfig cfg;
  cfg.queue_depth = 8;
  cfg.workers = 1;
  cfg.coalesce = false;
  cfg.retry_after_s = 1.0;
  cfg.retry_after_per_queued_s = 0.5;
  cfg.retry_after_max_s = 2.5;
  net::ServingQueue queue(cfg);

  // Empty queue: the hint is just the base.
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_DOUBLE_EQ(queue.retry_after_hint_s(), 1.0);

  GateJob gate;
  auto gate_ticket = queue.submit("gate", gate.job());
  ASSERT_TRUE(gate_ticket.has_value());
  gate.wait_started();  // executing, not queued: hint still the base
  EXPECT_DOUBLE_EQ(queue.retry_after_hint_s(), 1.0);

  auto a = queue.submit("a", [] { return ok_result("a"); });
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_DOUBLE_EQ(queue.retry_after_hint_s(), 1.5);  // base + 0.5 x 1

  auto b = queue.submit("b", [] { return ok_result("b"); });
  auto c = queue.submit("c", [] { return ok_result("c"); });
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(queue.depth(), 3u);
  // base + 0.5 x 3 = 2.5... exactly the cap; one more queued item clamps.
  EXPECT_DOUBLE_EQ(queue.retry_after_hint_s(), 2.5);
  auto d = queue.submit("d", [] { return ok_result("d"); });
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(queue.retry_after_hint_s(), 2.5);

  // A zero slope restores the historic fixed Retry-After.
  net::ServingConfig fixed_cfg = cfg;
  fixed_cfg.retry_after_per_queued_s = 0.0;
  net::ServingQueue fixed(fixed_cfg);
  EXPECT_DOUBLE_EQ(fixed.retry_after_hint_s(), 1.0);

  gate.release();
  (void)a->result.get();
  (void)b->result.get();
  (void)c->result.get();
  (void)d->result.get();
}

TEST(ServingQueue, StopFulfilsQueuedWaitersWith503) {
  net::ServingConfig cfg;
  cfg.queue_depth = 8;
  cfg.workers = 1;
  net::ServingQueue queue(cfg);

  GateJob gate;
  auto gate_ticket = queue.submit("gate", gate.job());
  ASSERT_TRUE(gate_ticket.has_value());
  gate.wait_started();

  auto queued = queue.submit("queued", [] { return ok_result("ran"); });
  ASSERT_TRUE(queued.has_value());

  // stop() joins the executor, which is pinned in the gate — run it from a
  // side thread. Before releasing the gate, wait until stop() has actually
  // taken effect (a probe submit is shed): otherwise the freed executor
  // could legitimately drain "queued" ahead of the shutdown and answer 200.
  // running_ flips and the queue is orphaned under one lock, so a shed
  // probe proves "queued" is already in the orphan list.
  std::thread stopper([&queue] { queue.stop(); });
  while (queue.submit("probe", [] { return ok_result("probe"); })) {
    std::this_thread::yield();
  }
  gate.release();
  stopper.join();

  EXPECT_EQ(gate_ticket->result.get().body, "gated");  // in-flight finishes
  EXPECT_EQ(queued->result.get().status, 503);         // queued answers 503

  // Submissions after stop are shed, not silently dropped.
  EXPECT_FALSE(queue.submit("late", [] { return ok_result("no"); }).has_value());
}

// ------------------------------------------------- backpressure over HTTP

TEST(ServingHttp, FullQueueAnswers429WithRetryAfterOverSockets) {
  net::ServingConfig cfg;
  cfg.queue_depth = 1;
  cfg.workers = 1;
  cfg.coalesce = false;
  cfg.retry_after_s = 2.0;
  net::ServingQueue queue(cfg);

  GateJob gate;
  auto gate_ticket = queue.submit("gate", gate.job());
  ASSERT_TRUE(gate_ticket.has_value());
  gate.wait_started();
  auto filler = queue.submit("filler", [] { return ok_result("ok\n"); });
  ASSERT_TRUE(filler.has_value());  // queue is now exactly full

  net::HttpServer server;
  server.handle_post("/q", [&queue](const net::HttpRequest&) {
    auto ticket = queue.submit("", [] { return ok_result("served\n"); });
    if (!ticket) {
      net::HttpResponse resp{429, "text/plain", "shed\n", {}, false};
      resp.extra_headers.emplace_back("Retry-After", "2");
      return resp;
    }
    const net::ServingResult r = ticket->result.get();
    return net::HttpResponse{r.status, r.content_type, r.body, {}, false};
  });
  ASSERT_TRUE(server.start());

  const std::uint64_t shed_before = queue.shed();
  const std::string resp = http_post(server.port(), "/q", "{}");
  EXPECT_NE(resp.find("429"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Retry-After: 2"), std::string::npos) << resp;
  EXPECT_EQ(queue.shed(), shed_before + 1);  // one rejection, one count

  gate.release();
  (void)filler->result.get();  // queue drained; the same POST now succeeds
  EXPECT_EQ(body_of(http_post(server.port(), "/q", "{}")), "served\n");
  server.stop();
  queue.stop();
}

// --------------------------------------------- the served golden contract

/// One chip + enrolled pipeline + live server for every ScanService case
/// (enrollment under golden_config is the expensive part; pay it once).
class ScanServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chip_ = new sim::ChipSimulator(tests::make_chip());
    pipeline_ = new analysis::Pipeline(*chip_, golden::golden_config());
    pipeline_->enroll(sim::Scenario::baseline(tests::kGoldenSeed));
    service_ = new net::ScanService(*pipeline_);
    server_ = new net::HttpServer();
    service_->install(*server_);
    ASSERT_TRUE(server_->start());
  }

  static void TearDownTestSuite() {
    service_->stop();  // before the server: handlers block on the queue
    server_->stop();
    delete server_;
    delete service_;
    delete pipeline_;
    delete chip_;
  }

  static std::string scan(const std::string& body,
                          const std::string& target = "/scan") {
    return http_post(server_->port(), target, body);
  }

  static sim::ChipSimulator* chip_;
  static analysis::Pipeline* pipeline_;
  static net::ScanService* service_;
  static net::HttpServer* server_;
};

sim::ChipSimulator* ScanServiceTest::chip_ = nullptr;
analysis::Pipeline* ScanServiceTest::pipeline_ = nullptr;
net::ScanService* ScanServiceTest::service_ = nullptr;
net::HttpServer* ScanServiceTest::server_ = nullptr;

TEST_F(ScanServiceTest, ServedScoresMatchCommittedGoldensBitExactly) {
  for (const char* name : {"t1", "t2", "t3", "t4"}) {
    std::ifstream in(std::string(PSA_GOLDEN_DIR) + "/" + name + ".golden");
    ASSERT_TRUE(in.is_open()) << name;
    std::stringstream text;
    text << in.rdbuf();
    const golden::GoldenRun want = golden::parse(text.str());

    const std::string resp = scan(std::string("{\"trojan\":\"") + name +
                                  "\",\"seed\":42}");
    ASSERT_NE(resp.find("200"), std::string::npos) << resp.substr(0, 200);
    const std::string body = body_of(resp);

    const std::vector<std::string> got = scores_hex_of(body);
    ASSERT_EQ(got.size(), want.scores.size()) << body;
    for (std::size_t i = 0; i < want.scores.size(); ++i) {
      EXPECT_EQ(got[i], golden::hex_bits(want.scores[i]))
          << name << " sensor " << i;
    }
    EXPECT_EQ(json_field(body, "best_sensor"),
              std::to_string(want.best_sensor))
        << body;
    EXPECT_EQ(json_field(body, "localized"), want.localized ? "true" : "false");
    EXPECT_EQ(json_field(body, "detected"), "true") << name;
  }
}

TEST_F(ScanServiceTest, ChunkedScanDecodesToTheSameVerdict) {
  const std::string plain = body_of(scan("{\"trojan\":\"t3\",\"seed\":42}"));
  const std::string chunked_resp =
      scan("{\"trojan\":\"t3\",\"seed\":42}", "/scan?chunked=1");
  EXPECT_NE(chunked_resp.find("Transfer-Encoding: chunked"),
            std::string::npos);
  // Reassemble the chunked body and compare verbatim (same scenario, same
  // bits — the transport must not touch the payload). The two requests are
  // distinct executions, so only the trace_id field may differ.
  std::string reassembled;
  const std::string raw = body_of(chunked_resp);
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const unsigned long len =
        std::strtoul(raw.substr(pos, eol - pos).c_str(), nullptr, 16);
    if (len == 0) break;
    reassembled += raw.substr(eol + 2, len);
    pos = eol + 2 + len + 2;
  }
  EXPECT_EQ(strip_trace_id(reassembled), strip_trace_id(plain));
  EXPECT_NE(json_field(reassembled, "trace_id"), "");
}

#if PSA_OBS_ENABLED
TEST_F(ScanServiceTest, TraceQueryReturnsTheCompletedSpanTree) {
  // ?trace=1 splices the finished span tree of the executing trace into
  // the verdict: the tree's root is the request's own trace (echoed in
  // X-PSA-Trace-Id), and its leaves reach down to the parallel.chunk
  // fan-out that computed the scores.
  obs::TraceRecorder::global().clear();
  obs::set_enabled(true);
  const std::string resp =
      scan("{\"trojan\":\"t1\",\"seed\":42}", "/scan?trace=1");
  obs::set_enabled(false);
  obs::TraceRecorder::global().clear();

  ASSERT_NE(resp.find("200"), std::string::npos) << resp.substr(0, 200);
  const std::string hdr_key = "X-PSA-Trace-Id: ";
  const std::size_t hdr_at = resp.find(hdr_key);
  ASSERT_NE(hdr_at, std::string::npos);
  const std::string header_trace =
      resp.substr(hdr_at + hdr_key.size(), 32);

  const std::string body = body_of(resp);
  EXPECT_EQ(json_field(body, "trace_id"), header_trace);
  const std::size_t tree_at = body.find("\"trace\":");
  ASSERT_NE(tree_at, std::string::npos);
  const std::string tree = body.substr(tree_at);
  EXPECT_NE(tree.find(header_trace), std::string::npos)
      << "span tree not rooted in the request's trace";
  EXPECT_NE(tree.find("serving.execute"), std::string::npos);
  EXPECT_NE(tree.find("parallel.chunk"), std::string::npos)
      << "span tree is missing the compute fan-out leaves";

  // Without ?trace the verdict carries the id but no tree.
  const std::string plain = body_of(scan("{\"trojan\":\"t1\",\"seed\":42}"));
  EXPECT_EQ(plain.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json_field(plain, "trace_id"), "");
}
#endif  // PSA_OBS_ENABLED

TEST_F(ScanServiceTest, MalformedScanBodiesGet400) {
  const char* bad[] = {
      "",                                    // empty
      "not json",                            // unparsable
      "[1,2,3]",                             // not an object
      "{\"trojan\":\"t9\"}",                 // unknown trojan
      "{\"seed\":42}",                       // trojan missing
      "{\"trojan\":\"t1\",\"seed\":-3}",     // negative seed
      "{\"trojan\":\"t1\",\"seed\":1.5}",    // fractional seed
      "{\"trojan\":\"t1\",\"bogus\":1}",     // unknown field
      "{\"trojan\":\"t1\",\"vdd\":\"hi\"}",  // wrong type
      "{\"trojan\":\"t1\"} trailing",        // trailing garbage
  };
  for (const char* body : bad) {
    EXPECT_NE(scan(body).find("400"), std::string::npos) << "for: " << body;
  }
}

TEST_F(ScanServiceTest, TraceVerdictMatchesDirectScoreSpectrum) {
  // A deterministic synthetic capture: the exact samples a client would
  // POST, also scored directly through the same pipeline objects.
  const double rate = 1.6e9;
  std::vector<double> samples(2048);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = static_cast<double>(i) / rate;
    samples[i] = 1e-4 * std::sin(2.0 * 3.141592653589793 * 25.0e6 * t);
  }
  const afe::SpectrumAnalyzer analyzer(pipeline_->config().analyzer);
  const analysis::DetectionResult direct =
      pipeline_->score_spectrum(3, analyzer.sweep(samples, rate));

  std::string body = "{\"sensor\":3,\"sample_rate_hz\":1600000000,"
                     "\"samples\":[";
  char buf[40];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i) body += ',';
    std::snprintf(buf, sizeof buf, "%.17g", samples[i]);
    body += buf;
  }
  body += "]}";

  const std::string resp = scan(body, "/trace");
  ASSERT_NE(resp.find("200"), std::string::npos) << resp.substr(0, 200);
  const std::string got = body_of(resp);
  // %.17g round-trips doubles exactly, so the served z must carry the very
  // bits the direct call produced.
  EXPECT_EQ(json_field(got, "z_hex"), golden::hex_bits(direct.score)) << got;
  EXPECT_EQ(json_field(got, "detected"), direct.detected ? "true" : "false");
  EXPECT_EQ(json_field(got, "anomalous_bins"),
            std::to_string(direct.anomalous_bins.size()));
}

TEST_F(ScanServiceTest, MalformedTraceBodiesGet400) {
  const char* bad[] = {
      "{\"sensor\":16,\"sample_rate_hz\":1e9,\"samples\":[1]}",   // range
      "{\"sensor\":0,\"sample_rate_hz\":0,\"samples\":[1]}",      // rate
      "{\"sensor\":0,\"sample_rate_hz\":1e9,\"samples\":[]}",     // empty
      "{\"sensor\":0,\"sample_rate_hz\":1e9}",                    // missing
      "{\"sensor\":0,\"sample_rate_hz\":1e9,\"samples\":[\"x\"]}",
  };
  for (const char* body : bad) {
    EXPECT_NE(scan(body, "/trace").find("400"), std::string::npos)
        << "for: " << body;
  }
}

TEST_F(ScanServiceTest, IdenticalConcurrentScansShareOneExecution) {
  const std::uint64_t coalesced_before = service_->queue().coalesced();
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> bodies(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      bodies[static_cast<std::size_t>(i)] =
          body_of(scan("{\"trojan\":\"t1\",\"seed\":7}"));
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& b : bodies) {
    // Every client gets the identical verdict; separate executions (when a
    // group completed before the next submit) differ only in trace_id.
    EXPECT_EQ(strip_trace_id(b), strip_trace_id(bodies[0]));
    EXPECT_NE(b.find("scores_hex"), std::string::npos);
  }
  // Concurrency makes the exact coalesce count timing-dependent, but the
  // identical bodies above prove sharing is sound whenever it happens, and
  // the counter only moves when it did.
  EXPECT_GE(service_->queue().coalesced(), coalesced_before);
}

TEST_F(ScanServiceTest, DetectorQueryWithoutBankGets503) {
  // The shared fixture service never had a bank attached.
  const std::string resp =
      scan("{\"trojan\":\"t1\",\"seed\":42}", "/scan?detectors=all");
  EXPECT_NE(resp.find("503"), std::string::npos) << resp.substr(0, 200);
}

/// The brace-balanced `{...}` value of `"name":{...}` (json_field only
/// handles scalar and array values).
std::string json_object(const std::string& body, const std::string& name) {
  const std::size_t at = body.find("\"" + name + "\":{");
  if (at == std::string::npos) return "";
  const std::size_t start = at + name.size() + 3;  // index of '{'
  int depth = 0;
  for (std::size_t i = start; i < body.size(); ++i) {
    if (body[i] == '{') ++depth;
    if (body[i] == '}' && --depth == 0) {
      return body.substr(start, i - start + 1);
    }
  }
  return "";
}

TEST_F(ScanServiceTest, DetectorVerdictsMatchCommittedGoldensBitExactly) {
  // Mirror compute_detector_goldens' setup on the fixture's enrolled
  // pipeline: a scales-2 bank calibrated on the golden baseline. The served
  // score_hex per detector must then equal tests/golden/detectors.golden
  // bit for bit — the serving path reuses the bank, it does not fork it.
  analysis::DetectorBank bank(*pipeline_,
                              analysis::BankConfig{.scales = 2});
  bank.calibrate(sim::Scenario::baseline(tests::kGoldenSeed));

  net::ScanService service(*pipeline_);
  service.attach_detector_bank(&bank);
  net::HttpServer server;
  service.install(server);
  ASSERT_TRUE(server.start());

  std::ifstream in(std::string(PSA_GOLDEN_DIR) + "/detectors.golden");
  ASSERT_TRUE(in.is_open());
  std::stringstream text;
  text << in.rdbuf();
  const golden::DetectorGoldens want = golden::parse_detectors(text.str());

  for (std::size_t s = 0; s < want.scenarios.size(); ++s) {
    const std::string resp = http_post(
        server.port(), "/scan?detectors=all",
        "{\"trojan\":\"" + want.scenarios[s] + "\",\"seed\":42}");
    ASSERT_NE(resp.find("200"), std::string::npos) << resp.substr(0, 200);
    const std::string body = body_of(resp);
    const std::size_t dets = body.find("\"detectors\":");
    ASSERT_NE(dets, std::string::npos) << body;

    for (const golden::DetectorGoldenRow& row : want.rows) {
      // The ensemble rides outside the "detectors" object.
      const std::string object =
          row.name == "ensemble"
              ? json_object(body, "ensemble")
              : json_object(body.substr(dets), row.name);
      ASSERT_FALSE(object.empty()) << row.name << " missing in " << body;
      EXPECT_EQ(json_field(object, "score_hex"),
                golden::hex_bits(row.runs[s].score))
          << row.name << " on " << want.scenarios[s];
      EXPECT_EQ(json_field(object, "detected"),
                row.runs[s].detected ? "true" : "false")
          << row.name << " on " << want.scenarios[s];
      if (row.name != "ensemble") {
        EXPECT_EQ(json_field(object, "peak_tile"),
                  std::to_string(row.runs[s].peak_tile))
            << row.name << " on " << want.scenarios[s];
      }
    }
  }

  // Subsets: validated, canonicalized and reported in bank order.
  const std::string sub = body_of(http_post(
      server.port(), "/scan?detectors=flatness,zscore",
      "{\"trojan\":\"t1\",\"seed\":42}"));
  EXPECT_NE(sub.find("\"zscore\":{"), std::string::npos) << sub;
  EXPECT_NE(sub.find("\"flatness\":{"), std::string::npos) << sub;
  EXPECT_EQ(sub.find("\"crossscale\":{"), std::string::npos) << sub;
  EXPECT_LT(sub.find("\"zscore\":{"), sub.find("\"flatness\":{"));
  EXPECT_NE(sub.find("\"ensemble\":{"), std::string::npos) << sub;

  const std::string bad = http_post(server.port(), "/scan?detectors=bogus",
                                    "{\"trojan\":\"t1\",\"seed\":42}");
  EXPECT_NE(bad.find("400"), std::string::npos) << bad.substr(0, 200);
  EXPECT_NE(bad.find("unknown detector"), std::string::npos);

  service.stop();  // before the server: handlers block on the queue
  server.stop();
}

}  // namespace
}  // namespace psa
