// Chip simulator: composition of activity, coupling, noise and front-end.
// These tests pin the physical behaviours every experiment relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "afe/spectrum_analyzer.hpp"
#include "common/units.hpp"
#include "dsp/stats.hpp"
#include "psa/programmer.hpp"
#include "sim/chip_simulator.hpp"

namespace psa::sim {
namespace {

// Shared fixture: one simulator for the whole file (FluxMap computation is
// the expensive part).
class SimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chip_ = new ChipSimulator(SimTiming{}, layout::Floorplan::aes_testchip());
    s10_ = new SensorView(chip_->view_from_program(
        sensor::CoilProgrammer::standard_sensor(10), "sensor10"));
    s0_ = new SensorView(chip_->view_from_program(
        sensor::CoilProgrammer::standard_sensor(0), "sensor0"));
  }
  static void TearDownTestSuite() {
    delete s0_;
    delete s10_;
    delete chip_;
    chip_ = nullptr;
    s10_ = s0_ = nullptr;
  }

  static ChipSimulator* chip_;
  static SensorView* s10_;
  static SensorView* s0_;
};

ChipSimulator* SimTest::chip_ = nullptr;
SensorView* SimTest::s10_ = nullptr;
SensorView* SimTest::s0_ = nullptr;

TEST_F(SimTest, TimingDefaults) {
  EXPECT_DOUBLE_EQ(chip_->timing().clock_hz, 33.0e6);
  EXPECT_DOUBLE_EQ(chip_->timing().sample_rate_hz(), 1.056e9);
}

TEST_F(SimTest, ScenarioFactories) {
  const Scenario t2 = Scenario::with_trojan(trojan::TrojanKind::kT2KeyLeak);
  EXPECT_EQ(t2.active_trojan, trojan::TrojanKind::kT2KeyLeak);
  EXPECT_EQ(t2.plaintext_mode, aes::PlaintextMode::kAlternating);
  const Scenario t4 = Scenario::with_trojan(trojan::TrojanKind::kT4DoS);
  EXPECT_EQ(t4.plaintext_mode, aes::PlaintextMode::kRandom);
  EXPECT_FALSE(Scenario::idle().encrypting);
  EXPECT_FALSE(Scenario::baseline().active_trojan.has_value());
}

TEST_F(SimTest, SensorViewHasGainsForAllModules) {
  for (const auto& m : chip_->floorplan().modules()) {
    EXPECT_TRUE(s10_->gains.count(m.name)) << m.name;
  }
  EXPECT_TRUE(s10_->gains.count("clock_tree"));
  EXPECT_EQ(s10_->switch_count, 4u);
  EXPECT_GT(s10_->wire_length_um, 500.0);
}

TEST_F(SimTest, TrojanGainStrongestAtSensor10) {
  // The Trojans sit under sensor 10; its coupling gain to them must beat
  // the far-corner sensor 0 by a large factor.
  for (const char* t : {"t1", "t2", "t3", "t4"}) {
    EXPECT_GT(std::fabs(s10_->gains.at(t)), 5.0 * std::fabs(s0_->gains.at(t)))
        << t;
  }
}

TEST_F(SimTest, MeasurementDeterministicForSeed) {
  const Scenario sc = Scenario::baseline(5);
  const MeasuredTrace a = chip_->measure(*s10_, sc, 128);
  const MeasuredTrace b = chip_->measure(*s10_, sc, 128);
  EXPECT_EQ(a.samples, b.samples);
}

TEST_F(SimTest, DifferentSeedsDiffer) {
  const MeasuredTrace a = chip_->measure(*s10_, Scenario::baseline(5), 128);
  const MeasuredTrace b = chip_->measure(*s10_, Scenario::baseline(6), 128);
  EXPECT_NE(a.samples, b.samples);
}

TEST_F(SimTest, TraceDuration) {
  const MeasuredTrace tr = chip_->measure(*s10_, Scenario::baseline(1), 1024);
  EXPECT_EQ(tr.samples.size(), 1024u * 32u);
  EXPECT_NEAR(tr.duration_s(), 31.03e-6, 0.1e-6);
}

TEST_F(SimTest, ClockHarmonicsPresentWhileEncrypting) {
  const MeasuredTrace tr = chip_->measure(*s10_, Scenario::baseline(2), 2048);
  afe::SpectrumAnalyzer sa;
  const auto s = sa.sweep(tr.samples, tr.sample_rate_hz);
  // 33 / 66 / 99 MHz lines well above the nearby floor.
  for (double h : {33.0e6, 66.0e6, 99.0e6}) {
    const double line = s.value_at(h);
    const double floor = s.value_at(h - 5.0e6);
    EXPECT_GT(line, 5.0 * floor) << h;
  }
}

TEST_F(SimTest, SidebandAppearsOnlyWithActiveTrojan) {
  afe::SpectrumAnalyzer sa;
  const MeasuredTrace off = chip_->measure(*s10_, Scenario::baseline(3), 2048);
  const MeasuredTrace on = chip_->measure(
      *s10_, Scenario::with_trojan(trojan::TrojanKind::kT4DoS, 3), 2048);
  const auto s_off = sa.sweep(off.samples, off.sample_rate_hz);
  const auto s_on = sa.sweep(on.samples, on.sample_rate_hz);
  // 48 MHz and 84 MHz sidebands (Fig. 4): >20 dB contrast.
  EXPECT_GT(s_on.value_at(48.0e6), 10.0 * s_off.value_at(48.0e6));
  EXPECT_GT(s_on.value_at(84.0e6), 10.0 * s_off.value_at(84.0e6));
}

TEST_F(SimTest, Sensor0BlindToTrojans) {
  afe::SpectrumAnalyzer sa;
  const MeasuredTrace off = chip_->measure(*s0_, Scenario::baseline(4), 2048);
  const MeasuredTrace on = chip_->measure(
      *s0_, Scenario::with_trojan(trojan::TrojanKind::kT1AmCarrier, 4), 2048);
  const auto s_off = sa.sweep(off.samples, off.sample_rate_hz);
  const auto s_on = sa.sweep(on.samples, on.sample_rate_hz);
  // Fig. 4e: "hardly any spectrum difference" at the empty corner — the
  // sideband grows by far less than at sensor 10.
  const double ratio = s_on.value_at(48.0e6) /
                       std::max(s_off.value_at(48.0e6), 1e-12);
  const MeasuredTrace on10 = chip_->measure(
      *s10_, Scenario::with_trojan(trojan::TrojanKind::kT1AmCarrier, 4), 2048);
  const MeasuredTrace off10 = chip_->measure(*s10_, Scenario::baseline(4), 2048);
  const auto s_on10 = sa.sweep(on10.samples, on10.sample_rate_hz);
  const auto s_off10 = sa.sweep(off10.samples, off10.sample_rate_hz);
  const double ratio10 = s_on10.value_at(48.0e6) /
                         std::max(s_off10.value_at(48.0e6), 1e-12);
  EXPECT_GT(ratio10, 10.0 * ratio);
}

TEST_F(SimTest, IdleTraceMuchQuieterThanActive) {
  const MeasuredTrace active = chip_->measure(*s10_, Scenario::baseline(6), 1024);
  const MeasuredTrace idle = chip_->measure(*s10_, Scenario::idle(6), 1024);
  EXPECT_GT(dsp::rms(active.samples), 30.0 * dsp::rms(idle.samples));
}

TEST_F(SimTest, SnrInPaperBand) {
  // Eq. (1) on the standard sensor: the paper reports 41.0 dB.
  const MeasuredTrace sig = chip_->measure(*s10_, Scenario::baseline(7), 2048);
  const MeasuredTrace noi = chip_->measure(*s10_, Scenario::idle(7), 2048);
  const double snr = dsp::snr_db(sig.samples, noi.samples);
  EXPECT_GT(snr, 37.0);
  EXPECT_LT(snr, 49.0);
}

TEST_F(SimTest, SupplyVoltageScalesSignal) {
  Scenario lo = Scenario::baseline(8);
  lo.vdd = 0.8;
  Scenario hi = Scenario::baseline(8);
  hi.vdd = 1.2;
  const auto v_lo = chip_->coil_voltage(*s10_, lo, 256);
  const auto v_hi = chip_->coil_voltage(*s10_, hi, 256);
  EXPECT_NEAR(dsp::rms(v_hi) / dsp::rms(v_lo), 1.5, 0.05);
}

TEST_F(SimTest, CoilResistanceTracksOperatingPoint) {
  Scenario nominal = Scenario::baseline(1);
  Scenario low_v = nominal;
  low_v.vdd = 0.8;
  Scenario hot = nominal;
  hot.temperature_k = celsius_to_kelvin(125.0);
  const double r_nom = chip_->coil_resistance_ohm(*s10_, nominal);
  EXPECT_GT(chip_->coil_resistance_ohm(*s10_, low_v), r_nom);
  EXPECT_GT(chip_->coil_resistance_ohm(*s10_, hot), r_nom);
}

TEST_F(SimTest, TotalCurrentReflectsTrojanLoad) {
  const auto base = chip_->total_current(Scenario::baseline(9), 512);
  const auto dos = chip_->total_current(
      Scenario::with_trojan(trojan::TrojanKind::kT4DoS, 9), 512);
  EXPECT_GT(dsp::rms(dos), 1.05 * dsp::rms(base));
}

TEST_F(SimTest, InvalidProgramRejected) {
  sensor::SensorProgram broken = sensor::CoilProgrammer::standard_sensor(3);
  broken.switches.clear();
  EXPECT_THROW(chip_->view_from_program(broken, "broken"),
               std::invalid_argument);
}

TEST_F(SimTest, ActivationCycleDelaysSideband) {
  afe::SpectrumAnalyzer sa;
  Scenario late = Scenario::with_trojan(trojan::TrojanKind::kT4DoS, 10);
  late.trojan_activation_cycle = 100000;  // beyond this trace
  const MeasuredTrace tr = chip_->measure(*s10_, late, 1024);
  const MeasuredTrace off = chip_->measure(*s10_, Scenario::baseline(10), 1024);
  const auto s_late = sa.sweep(tr.samples, tr.sample_rate_hz);
  const auto s_off = sa.sweep(off.samples, off.sample_rate_hz);
  EXPECT_LT(s_late.value_at(48.0e6), 3.0 * s_off.value_at(48.0e6));
}

}  // namespace
}  // namespace psa::sim
