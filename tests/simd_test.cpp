// Bit-identity suite for the runtime-dispatched simd:: kernels: every
// vectorized kernel must produce byte-for-byte the scalar reference's
// output, across sizes that exercise the remainder lanes (n % 4 != 0,
// n % 8 != 0) and the masked q == 0 skip paths. Also pins down the
// dispatch semantics (set_isa clamping, isa_name) and checks two end-to-end
// consumers (rfft, zero_span) stay bitwise stable across dispatch flips.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/simd/simd.hpp"
#include "dsp/fft.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/window.hpp"

namespace psa {
namespace {

// Sizes chosen so every vector width's main loop AND remainder loop run:
// n in {1..9} covers 0-2 full 4-lane groups with all remainders, the rest
// covers larger bodies with n % 4 and n % 8 of every residue.
const std::vector<std::size_t> kSizes = {1,  2,  3,  4,  5,   7,   8,  9,
                                         15, 16, 17, 31, 33,  63,  65, 100,
                                         127, 129, 256, 1000};

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-3.0, 3.0);
  return v;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Run `body` once under scalar and once under AVX2 dispatch, returning the
/// two results for comparison. Skips (returns false) when the host can't do
/// AVX2 — the dispatch then has a single variant and there is nothing to
/// cross-check.
template <typename Body>
bool run_both(const Body& body, std::vector<double>* scalar_out,
              std::vector<double>* vector_out) {
  if (simd::best_supported_isa() != simd::Isa::kAvx2) return false;
  const simd::Isa prev = simd::active_isa();
  simd::set_isa(simd::Isa::kScalar);
  *scalar_out = body();
  simd::set_isa(simd::Isa::kAvx2);
  *vector_out = body();
  simd::set_isa(prev);
  return true;
}

TEST(SimdDispatch, SetIsaClampsAndReports) {
  const simd::Isa prev = simd::active_isa();
  EXPECT_EQ(simd::set_isa(simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  // Asking for AVX2 yields AVX2 where supported, scalar otherwise — never
  // an unsupported table.
  const simd::Isa got = simd::set_isa(simd::Isa::kAvx2);
  EXPECT_EQ(got, simd::best_supported_isa());
  EXPECT_EQ(simd::active_isa(), got);
  simd::set_isa(prev);
}

TEST(SimdDispatch, IsaNames) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
}

TEST(SimdBitIdentity, Scale) {
  for (std::size_t n : kSizes) {
    const std::vector<double> src = random_vec(n, 11 + n);
    std::vector<double> a, b;
    if (!run_both(
            [&] {
              std::vector<double> dst(n, -1.0);
              simd::scale(dst.data(), src.data(), n, 1.7e-15);
              return dst;
            },
            &a, &b)) {
      GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
    }
    EXPECT_TRUE(bitwise_equal(a, b)) << "scale diverged at n=" << n;
  }
}

TEST(SimdBitIdentity, ScaleInplace) {
  for (std::size_t n : kSizes) {
    const std::vector<double> init = random_vec(n, 23 + n);
    std::vector<double> a, b;
    if (!run_both(
            [&] {
              std::vector<double> x = init;
              simd::scale_inplace(x.data(), n, 0.97531);
              return x;
            },
            &a, &b)) {
      GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
    }
    EXPECT_TRUE(bitwise_equal(a, b)) << "scale_inplace diverged at n=" << n;
  }
}

TEST(SimdBitIdentity, Axpy) {
  for (std::size_t n : kSizes) {
    const std::vector<double> x = random_vec(n, 37 + n);
    const std::vector<double> y0 = random_vec(n, 41 + n);
    std::vector<double> a, b;
    if (!run_both(
            [&] {
              std::vector<double> y = y0;
              simd::axpy(y.data(), x.data(), n, -2.5e-7);
              return y;
            },
            &a, &b)) {
      GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
    }
    EXPECT_TRUE(bitwise_equal(a, b)) << "axpy diverged at n=" << n;
  }
}

TEST(SimdBitIdentity, NoiseAccumulate) {
  for (std::size_t n : kSizes) {
    const std::vector<double> unit = random_vec(n, 53 + n);
    const std::vector<double> spur = random_vec(n, 59 + n);
    const std::vector<double> y0 = random_vec(n, 61 + n);
    std::vector<double> a, b;
    if (!run_both(
            [&] {
              std::vector<double> y = y0;
              simd::noise_accumulate(y.data(), unit.data(), spur.data(), n,
                                     3.3e-6, 1.25);
              return y;
            },
            &a, &b)) {
      GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
    }
    EXPECT_TRUE(bitwise_equal(a, b)) << "noise_accumulate diverged at n=" << n;
  }
}

TEST(SimdBitIdentity, FluxFromCharges) {
  const double kern[3] = {0.25, 0.5, 0.25};
  // Zero patterns stress all three AVX2 group paths: no zeros (vector),
  // all zeros (skip), mixed within a 4-lane group (per-lane fallback).
  for (std::size_t n_cycles : kSizes) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      const std::size_t spc = 8;
      std::vector<double> charge = random_vec(n_cycles, 67 + n_cycles);
      for (std::size_t c = 0; c < n_cycles; ++c) {
        if (pattern == 1) charge[c] = 0.0;
        if (pattern == 2 && c % 3 != 0) charge[c] = 0.0;
      }
      const std::vector<double> flux0 =
          random_vec(n_cycles * spc, 71 + n_cycles);
      std::vector<double> a, b;
      if (!run_both(
              [&] {
                std::vector<double> flux = flux0;
                simd::flux_from_charges(flux.data(), charge.data(), n_cycles,
                                        spc, kern, 3, 2.56e9, 0.9, 9e-8);
                return flux;
              },
              &a, &b)) {
        GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
      }
      EXPECT_TRUE(bitwise_equal(a, b))
          << "flux_from_charges diverged at n_cycles=" << n_cycles
          << " pattern=" << pattern;
    }
  }
}

TEST(SimdBitIdentity, FftStage) {
  // Every stage length of a 32-point transform: h = 1 and 2 are pure
  // remainder, h = 4 pure vector, h = 8/16 vector + alignment variety.
  const std::size_t n = 32;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t h = len / 2;
    const std::vector<double> re0 = random_vec(n, 73 + len);
    const std::vector<double> im0 = random_vec(n, 79 + len);
    const std::vector<double> wr = random_vec(h, 83 + len);
    const std::vector<double> wi = random_vec(h, 89 + len);
    std::vector<double> a, b;
    if (!run_both(
            [&] {
              std::vector<double> re = re0;
              std::vector<double> im = im0;
              simd::fft_stage(re.data(), im.data(), n, len, wr.data(),
                              wi.data());
              re.insert(re.end(), im.begin(), im.end());
              return re;
            },
            &a, &b)) {
      GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
    }
    EXPECT_TRUE(bitwise_equal(a, b)) << "fft_stage diverged at len=" << len;
  }
}

TEST(SimdBitIdentity, GoertzelSums) {
  // Block counts 1..9 cover 0-2 full 4-block groups plus every remainder.
  for (std::size_t count = 1; count <= 9; ++count) {
    for (std::size_t block : {5ul, 16ul, 33ul}) {
      const std::size_t hop = 3;
      const std::vector<double> signal =
          random_vec(block + hop * count, 97 + count + block);
      const std::vector<double> window = random_vec(block, 101 + block);
      std::vector<std::size_t> starts(count);
      for (std::size_t b = 0; b < count; ++b) starts[b] = b * hop;
      std::vector<double> a, b;
      if (!run_both(
              [&] {
                std::vector<double> s1(count), s2(count);
                simd::goertzel_sums(signal.data(), window.data(), block,
                                    1.618, starts.data(), count, s1.data(),
                                    s2.data());
                s1.insert(s1.end(), s2.begin(), s2.end());
                return s1;
              },
              &a, &b)) {
        GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
      }
      EXPECT_TRUE(bitwise_equal(a, b))
          << "goertzel_sums diverged at count=" << count
          << " block=" << block;
    }
  }
}

// End-to-end: the two dispatch paths must agree through the real consumers,
// not just kernel-by-kernel — this is what lets the golden suite pass under
// either PSA_SIMD setting.
TEST(SimdEndToEnd, RfftBitIdenticalAcrossDispatch) {
  const std::vector<double> signal = random_vec(1024, 103);
  std::vector<double> a, b;
  const auto run = [&] {
    const std::vector<dsp::cplx> out = dsp::rfft(signal);
    std::vector<double> flat;
    flat.reserve(out.size() * 2);
    for (const dsp::cplx& c : out) {
      flat.push_back(c.real());
      flat.push_back(c.imag());
    }
    return flat;
  };
  if (!run_both(run, &a, &b)) {
    GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
  }
  EXPECT_TRUE(bitwise_equal(a, b));
}

TEST(SimdEndToEnd, ZeroSpanBitIdenticalAcrossDispatch) {
  std::vector<double> signal = random_vec(4096, 107);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] += std::sin(0.1 * static_cast<double>(i));
  }
  std::vector<double> a, b;
  const auto run = [&] {
    const dsp::ZeroSpanTrace tr =
        dsp::zero_span(signal, 1e6, 2.5e4, /*block=*/250, /*hop=*/100);
    return tr.magnitude;
  };
  if (!run_both(run, &a, &b)) {
    GTEST_SKIP() << "host has no AVX2; single-variant dispatch";
  }
  EXPECT_TRUE(bitwise_equal(a, b));
}

// The batched zero_span must also match the one-goertzel-per-block
// formulation it replaced, whatever the active dispatch is.
TEST(SimdEndToEnd, ZeroSpanMatchesPerBlockGoertzel) {
  std::vector<double> signal = random_vec(2048, 109);
  const std::size_t block = 200;
  const std::size_t hop = 64;
  const double rate = 1e6;
  const double f0 = 3.1e4;
  const dsp::ZeroSpanTrace tr = dsp::zero_span(signal, rate, f0, block, hop);

  const std::vector<double> win =
      dsp::make_window(dsp::WindowKind::kHann, block);
  const double cg = dsp::coherent_gain(win);
  std::vector<double> buf(block);
  std::size_t idx = 0;
  for (std::size_t start = 0; start + block <= signal.size(); start += hop) {
    for (std::size_t i = 0; i < block; ++i) {
      buf[i] = signal[start + i] * win[i];
    }
    const std::complex<double> y = dsp::goertzel(buf, rate, f0);
    ASSERT_LT(idx, tr.magnitude.size());
    const double expect = std::abs(y) / cg;
    EXPECT_EQ(tr.magnitude[idx], expect) << "block " << idx;
    ++idx;
  }
  EXPECT_EQ(idx, tr.magnitude.size());
}

}  // namespace
}  // namespace psa
