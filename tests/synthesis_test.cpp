// synthesis_test.cpp — the shared trace-synthesis engine (sim/
// activity_synthesis) and its bit-identity contract: measure_batch must
// return byte-for-byte the traces the original per-sensor path produced,
// for every scenario, seed and thread count; the ActivitySynthesis cache
// must hit/evict/invalidate like the LRU it claims to be; and faulted runs
// must never measure through a bundle cached before the fault state changed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "em/fluxmap_cache.hpp"
#include "fixtures.hpp"
#include "psa/programmer.hpp"
#include "sim/chip_simulator.hpp"

namespace psa {
namespace {

using tests::all_scenarios;
using tests::make_chip;
using tests::same_samples;
using tests::standard_views;
using tests::ThreadCountGuard;

// --- measure_batch bit-identity --------------------------------------------

TEST(BatchBitIdentity, MatchesPerSensorPathAcrossScenariosSeedsAndThreads) {
  sim::ChipSimulator chip = make_chip();
  const std::vector<sim::SensorView> views =
      standard_views(chip, {0, 5, 10, 15});
  const std::size_t cycles = 256;
  ThreadCountGuard guard;

  for (std::uint64_t seed : {7ULL, 12345ULL}) {
    for (const sim::Scenario& s : all_scenarios(seed)) {
      // Ground truth from the verbatim seed-era path, computed serially.
      set_thread_count(1);
      std::vector<sim::MeasuredTrace> ref;
      for (const sim::SensorView& v : views) {
        ref.push_back(chip.measure_reference(v, s, cycles));
      }
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        set_thread_count(threads);
        const std::vector<sim::MeasuredTrace> batch =
            chip.measure_batch(std::span<const sim::SensorView>(views), s,
                               cycles);
        ASSERT_EQ(batch.size(), views.size());
        for (std::size_t i = 0; i < views.size(); ++i) {
          EXPECT_TRUE(same_samples(batch[i], ref[i]))
              << "batch diverged: seed=" << seed << " sensor#" << i
              << " threads=" << threads
              << (s.active_trojan ? " (trojan active)" : " (baseline)");
          // The single-view entry point shares the same bundle path.
          EXPECT_TRUE(same_samples(chip.measure(views[i], s, cycles), ref[i]));
        }
      }
    }
  }
}

TEST(BatchBitIdentity, NullViewYieldsEmptyTrace) {
  sim::ChipSimulator chip = make_chip();
  const std::vector<sim::SensorView> views = standard_views(chip, {3, 12});
  const sim::Scenario s = sim::Scenario::baseline(9);
  const std::vector<const sim::SensorView*> ptrs{&views[0], nullptr,
                                                 &views[1]};
  const std::vector<sim::MeasuredTrace> batch = chip.measure_batch(
      std::span<const sim::SensorView* const>(ptrs), s, 128);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_FALSE(batch[0].samples.empty());
  EXPECT_TRUE(batch[1].samples.empty());  // masked slot: no measurement
  EXPECT_FALSE(batch[2].samples.empty());
  EXPECT_TRUE(same_samples(batch[0], chip.measure_reference(views[0], s, 128)));
  EXPECT_TRUE(same_samples(batch[2], chip.measure_reference(views[1], s, 128)));
}

// --- ActivitySynthesis cache behaviour --------------------------------------

TEST(ActivitySynthesisCache, SharesOneBundleAcrossSensorsAndCounts) {
  sim::ChipSimulator chip = make_chip();
  const std::vector<sim::SensorView> views =
      standard_views(chip, {1, 6, 11});
  const sim::Scenario s = sim::Scenario::baseline(21);

  (void)chip.measure_batch(std::span<const sim::SensorView>(views), s, 128);
  sim::ActivitySynthesis::Stats st = chip.synthesis().stats();
  EXPECT_EQ(st.misses, 1u);  // one synthesis for the whole batch
  EXPECT_EQ(st.entries, 1u);

  (void)chip.measure(views[0], s, 128);  // same fingerprint: pure hit
  st = chip.synthesis().stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_GE(st.hits, 1u);

  (void)chip.measure(views[0], s, 256);  // different n_cycles: new bundle
  st = chip.synthesis().stats();
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.entries, 2u);
}

TEST(ActivitySynthesisCache, LruEvictionPrefersStaleEntries) {
  sim::ActivitySynthesis cache(/*max_entries=*/2);
  const sim::SimTiming timing{};
  const sim::Scenario a = sim::Scenario::baseline(1);
  const sim::Scenario b = sim::Scenario::baseline(2);
  const sim::Scenario c = sim::Scenario::baseline(3);

  const auto ba = cache.get_or_synthesize(a, 64, timing);
  (void)cache.get_or_synthesize(b, 64, timing);
  // Touch `a` so `b` becomes the least recently used entry.
  EXPECT_EQ(cache.get_or_synthesize(a, 64, timing).get(), ba.get());
  (void)cache.get_or_synthesize(c, 64, timing);  // evicts b, not a

  sim::ActivitySynthesis::Stats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);

  // `a` must still be resident (hit), `b` must have been the victim (miss).
  EXPECT_EQ(cache.get_or_synthesize(a, 64, timing).get(), ba.get());
  const std::size_t misses_before = cache.stats().misses;
  (void)cache.get_or_synthesize(b, 64, timing);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(ActivitySynthesisCache, CapacityIsAdjustable) {
  sim::ActivitySynthesis cache(/*max_entries=*/4);
  EXPECT_EQ(cache.capacity(), 4u);
  cache.set_capacity(1);
  EXPECT_EQ(cache.capacity(), 1u);
  const sim::SimTiming timing{};
  (void)cache.get_or_synthesize(sim::Scenario::baseline(1), 64, timing);
  (void)cache.get_or_synthesize(sim::Scenario::baseline(2), 64, timing);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ActivitySynthesisCache, StatsSnapshotSafeDuringConcurrentMeasurement) {
  // One thread polls stats() in a tight loop while measurements mutate the
  // cache — the counter snapshot must stay synchronized with the map state.
  // CI runs this suite under TSan, which verifies the absence of data races
  // directly; the assertions below check the snapshot is also *consistent*
  // (never more entries than capacity, misses within the issued range).
  sim::ChipSimulator chip = make_chip();
  const std::vector<sim::SensorView> views = standard_views(chip, {0, 8});
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      const sim::ActivitySynthesis::Stats st = chip.synthesis().stats();
      EXPECT_LE(st.entries, chip.synthesis().capacity());
      EXPECT_LE(st.misses, 8u);
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  constexpr std::size_t kRuns = 6;
  for (std::size_t i = 0; i < kRuns; ++i) {
    const sim::Scenario s = sim::Scenario::baseline(100 + i);
    (void)chip.measure_batch(std::span<const sim::SensorView>(views), s, 64);
  }
  // On a loaded single-core machine the poller may not have been scheduled
  // at all yet — hold the stop flag until it has taken at least one
  // snapshot, so the consistency checks above are guaranteed to run.
  while (polls.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls.load(), 0u);
  const sim::ActivitySynthesis::Stats st = chip.synthesis().stats();
  EXPECT_EQ(st.misses, kRuns);  // one synthesis per distinct seed
  EXPECT_EQ(st.entries, kRuns);
}

// --- fault-injection regression ---------------------------------------------

TEST(ActivitySynthesisCache, FaultTransitionsInvalidateCachedBundles) {
  sim::ChipSimulator chip = make_chip();
  const std::vector<sim::SensorView> views = standard_views(chip, {10});
  const sim::Scenario s =
      sim::Scenario::with_trojan(trojan::TrojanKind::kT3CdmaLeak, 4242);

  // Warm the cache in the healthy state.
  const sim::MeasuredTrace healthy = chip.measure(views[0], s, 256);
  EXPECT_GE(chip.synthesis().stats().entries, 1u);

  sim::MeasurementFaults faults;
  faults.noise_scale = 2.5;
  faults.temperature_offset_k = 40.0;
  faults.frontend.opamp_gain_scale = 0.8;
  faults.frontend.adc.stuck_low_bits = 0x3;
  chip.inject_measurement_faults(faults);

  // Injection dropped every bundle synthesized before the transition.
  sim::ActivitySynthesis::Stats st = chip.synthesis().stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.invalidations, 1u);

  // The faulted measurement must equal the faulted reference path — i.e. it
  // must not have been served through any stale pre-fault state.
  const sim::MeasuredTrace faulted = chip.measure(views[0], s, 256);
  EXPECT_TRUE(same_samples(faulted, chip.measure_reference(views[0], s, 256)));
  EXPECT_FALSE(same_samples(faulted, healthy));

  // Clearing the faults is a second transition: invalidate again, and the
  // healthy measurement comes back bit-identical.
  chip.clear_measurement_faults();
  st = chip.synthesis().stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.invalidations, 2u);
  EXPECT_TRUE(same_samples(chip.measure(views[0], s, 256), healthy));
}

// --- satellite regressions ---------------------------------------------------

TEST(FluxMapCacheLru, CountsEvictionsAndKeepsRecentlyTouchedEntries) {
  em::FluxMapCache cache(/*max_entries=*/2);
  em::FluxMap::Params p;
  p.winding_raster = 48;
  p.source_nx = 12;
  p.source_ny = 12;
  const Rect die{{0.0, 0.0}, {576.0, 576.0}};
  auto coil_at = [](double x) {
    return Polyline{{x, 32.0}, {x + 64.0, 32.0}, {x + 64.0, 96.0}, {x, 96.0}};
  };

  const auto a = cache.get_or_compute(coil_at(32.0), die, p);
  (void)cache.get_or_compute(coil_at(128.0), die, p);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Refresh `a`: under LRU the next insert must evict the 128 µm coil (the
  // FIFO this cache used to be would have evicted `a`).
  EXPECT_EQ(cache.get_or_compute(coil_at(32.0), die, p).get(), a.get());
  (void)cache.get_or_compute(coil_at(224.0), die, p);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.get_or_compute(coil_at(32.0), die, p).get(), a.get());

  const std::size_t misses_before = cache.stats().misses;
  (void)cache.get_or_compute(coil_at(128.0), die, p);  // was evicted
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(PackedRfft, MatchesReferenceWithinRounding) {
  std::vector<double> x(1024);
  Rng rng(99);
  for (double& v : x) v = rng.gaussian();
  const std::vector<dsp::cplx> fast = dsp::rfft(x);
  const std::vector<dsp::cplx> ref = dsp::rfft_reference(x);
  ASSERT_EQ(fast.size(), ref.size());
  double peak = 0.0;
  for (const dsp::cplx& c : ref) peak = std::max(peak, std::abs(c));
  for (std::size_t k = 0; k < ref.size(); ++k) {
    // The packed transform reassociates; agreement to ~1e-12 of the peak is
    // the documented contract (dsp/fft.hpp).
    EXPECT_NEAR(fast[k].real(), ref[k].real(), 1e-12 * peak) << "bin " << k;
    EXPECT_NEAR(fast[k].imag(), ref[k].imag(), 1e-12 * peak) << "bin " << k;
  }
}

}  // namespace
}  // namespace psa
