// timeseries_test.cpp — the background metrics sampler: deterministic
// sample_once() pumping, per-kind series naming (counter, gauge, histogram
// count/mean/quantiles), ring-capacity drop accounting, the background
// thread's start/stop lifecycle, and the JSON rendering the /timeseries
// endpoint returns.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace psa {
namespace {

// The global registry is append-only, so each test uses its own uniquely
// prefixed metric names and locates its series by name in the snapshot.
const obs::SeriesSnapshot* find_series(
    const std::vector<obs::SeriesSnapshot>& all, const std::string& name) {
  for (const obs::SeriesSnapshot& s : all) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TimeSeries, CounterAndGaugeSeriesTrackValues) {
  obs::Registry::global().counter("tstest.a.count").add(2);
  obs::Registry::global().gauge("tstest.a.gauge").set(2.5);

  obs::TimeSeriesSampler sampler;
  sampler.sample_once();
  obs::Registry::global().counter("tstest.a.count").add(3);
  obs::Registry::global().gauge("tstest.a.gauge").set(-1.0);
  sampler.sample_once();

  const auto all = sampler.snapshot();
  const obs::SeriesSnapshot* counter = find_series(all, "tstest.a.count");
  const obs::SeriesSnapshot* gauge = find_series(all, "tstest.a.gauge");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(gauge, nullptr);
  ASSERT_EQ(counter->points.size(), 2u);
  EXPECT_EQ(counter->points[0].value, 2.0);
  EXPECT_EQ(counter->points[1].value, 5.0);  // running total, not a delta
  ASSERT_EQ(gauge->points.size(), 2u);
  EXPECT_EQ(gauge->points[0].value, 2.5);
  EXPECT_EQ(gauge->points[1].value, -1.0);
  EXPECT_LE(counter->points[0].t_us, counter->points[1].t_us);
  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(TimeSeries, HistogramExpandsToCountMeanQuantiles) {
  auto& h = obs::Registry::global().histogram(
      "tstest.b.lat", obs::default_value_bounds());
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);

  obs::TimeSeriesConfig cfg;
  cfg.quantiles = {0.5, 0.99};
  obs::TimeSeriesSampler sampler(cfg);
  sampler.sample_once();

  const auto all = sampler.snapshot();
  const auto* count = find_series(all, "tstest.b.lat.count");
  const auto* mean = find_series(all, "tstest.b.lat.mean");
  const auto* p50 = find_series(all, "tstest.b.lat.p50");
  const auto* p99 = find_series(all, "tstest.b.lat.p99");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(mean, nullptr);
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(count->points.at(0).value, 3.0);
  EXPECT_NEAR(mean->points.at(0).value, 2.0, 1e-12);
  // Bucketed quantile estimates are coarse; just demand sane ordering.
  EXPECT_LE(p50->points.at(0).value, p99->points.at(0).value);
}

TEST(TimeSeries, RingDropsOldestPointsAndCountsThem) {
  obs::Registry::global().gauge("tstest.c.gauge").set(1.0);
  obs::TimeSeriesConfig cfg;
  cfg.capacity = 4;
  obs::TimeSeriesSampler sampler(cfg);
  for (int i = 0; i < 10; ++i) {
    obs::Registry::global().gauge("tstest.c.gauge").set(i);
    sampler.sample_once();
  }
  const auto all = sampler.snapshot();
  const auto* s = find_series(all, "tstest.c.gauge");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->points.size(), 4u);
  EXPECT_EQ(s->points.back().value, 9.0);  // newest survives
  EXPECT_EQ(s->points.front().value, 6.0);
  EXPECT_GT(sampler.dropped_points(), 0u);
  for (std::size_t i = 1; i < s->points.size(); ++i) {
    EXPECT_LE(s->points[i - 1].t_us, s->points[i].t_us);
  }
}

TEST(TimeSeries, BackgroundThreadTicksAndStopsPromptly) {
  obs::TimeSeriesConfig cfg;
  cfg.interval_s = 0.01;
  obs::TimeSeriesSampler sampler(cfg);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.start();  // idempotent

  // Wait (bounded) for at least two ticks rather than sleeping a fixed
  // amount — CI machines stall unpredictably.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.samples_taken() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(sampler.samples_taken(), 2u);

  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent
  const std::uint64_t frozen = sampler.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(sampler.samples_taken(), frozen);  // really stopped
}

TEST(TimeSeries, WriteJsonCarriesHealthAndSeries) {
  obs::Registry::global().gauge("tstest.d.gauge").set(7.0);
  obs::TimeSeriesSampler sampler;
  sampler.sample_once();
  std::ostringstream os;
  sampler.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"series\":"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tstest.d.gauge\""), std::string::npos);
  EXPECT_NE(json.find(",7]"), std::string::npos) << json;  // [t_us,7] point
}

}  // namespace
}  // namespace psa
