// tracing_test.cpp — end-to-end causal tracing and the alarm flight
// recorder: W3C traceparent parse/format, cross-thread context propagation
// (fork_join chunks, ServingQueue executors, coalesced link-spans), the
// span-tree exporter, HTTP trace-id plumbing (X-PSA-Trace-Id, traceparent
// adoption), /events stale-cursor metadata, OpenMetrics exemplars, and the
// per-chip blackbox bundle (determinism, drain semantics, HTTP endpoint).
//
// These tests run under the TSan matrix job: the propagation tests
// deliberately hand contexts across real threads (pool workers, serving
// executors, HTTP connection workers) so a racy install/restore shows up
// as a report, not a flake.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <future>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_http.hpp"
#include "fixtures.hpp"
#include "net/http_exposition.hpp"
#include "net/serving.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace psa {
namespace {

/// Send `request` verbatim to 127.0.0.1:port and return the full response
/// ("" on connect failure). Raw bytes in, raw bytes out — the traceparent
/// tests need full control of the header block.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return raw_request(
      port, "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

/// Value of a response header (case-sensitive match on the canonical name
/// the server emits), "" when absent.
std::string header_value(const std::string& resp, const std::string& name) {
  const std::string key = "\r\n" + name + ": ";
  const std::size_t at = resp.find(key);
  if (at == std::string::npos) return "";
  const std::size_t start = at + key.size();
  const std::size_t end = resp.find("\r\n", start);
  return resp.substr(start, end - start);
}

std::string body_of(const std::string& resp) {
  const std::size_t at = resp.find("\r\n\r\n");
  return at == std::string::npos ? "" : resp.substr(at + 4);
}

bool is_hex(const std::string& s) {
  for (const char c : s) {
    const bool ok =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return !s.empty();
}

/// Drop every line carrying a wall-clock value (key ends `_us"`) — the
/// only non-deterministic lines in a blackbox bundle by construction.
std::string strip_wallclock_lines(const std::string& bundle) {
  std::istringstream in(bundle);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("_us\":") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceContext + traceparent

TEST(TraceContext, MakeContextIsValidAndDistinct) {
  const obs::TraceContext a = obs::make_trace_context();
  const obs::TraceContext b = obs::make_trace_context();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.same_trace(b));
  EXPECT_EQ(obs::trace_id_hex(a).size(), 32u);
  EXPECT_EQ(obs::span_id_hex(a.span_id).size(), 16u);
}

TEST(TraceContext, TraceparentRoundTrips) {
  const obs::TraceContext ctx = obs::make_trace_context();
  const std::string header = obs::format_traceparent(ctx);
  ASSERT_EQ(header.size(), 55u);  // 2 + 1 + 32 + 1 + 16 + 1 + 2
  EXPECT_EQ(header.substr(0, 3), "00-");

  obs::TraceContext parsed;
  ASSERT_TRUE(obs::parse_traceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_hi, ctx.trace_hi);
  EXPECT_EQ(parsed.trace_lo, ctx.trace_lo);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
}

TEST(TraceContext, TraceparentRejectsMalformedHeaders) {
  obs::TraceContext out;
  const std::string good =
      "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01";
  ASSERT_TRUE(obs::parse_traceparent(good, &out));

  // Wrong length, bad separators, reserved version, zero ids, non-hex.
  EXPECT_FALSE(obs::parse_traceparent("", &out));
  EXPECT_FALSE(obs::parse_traceparent(good.substr(0, 54), &out));
  EXPECT_FALSE(obs::parse_traceparent(good + "0", &out));
  std::string bad = good;
  bad[2] = '_';
  EXPECT_FALSE(obs::parse_traceparent(bad, &out));
  EXPECT_FALSE(obs::parse_traceparent(
      "ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01", &out));
  EXPECT_FALSE(obs::parse_traceparent(
      "00-00000000000000000000000000000000-0123456789abcdef-01", &out));
  EXPECT_FALSE(obs::parse_traceparent(
      "00-0123456789abcdef0123456789abcdef-0000000000000000-01", &out));
  EXPECT_FALSE(obs::parse_traceparent(
      "00-0123456789abcdef0123456789abcdeZ-0123456789abcdef-01", &out));
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  // A fresh thread starts with no active context; a scope installs one for
  // exactly its extent, nesting restores the outer context.
  std::thread([] {
    EXPECT_FALSE(obs::current_trace_context().valid());
    const obs::TraceContext outer = obs::make_trace_context();
    {
      obs::TraceContextScope outer_scope(outer);
      EXPECT_EQ(obs::current_trace_context().span_id, outer.span_id);
      const obs::TraceContext inner = obs::make_trace_context();
      {
        obs::TraceContextScope inner_scope(inner);
        EXPECT_EQ(obs::current_trace_context().span_id, inner.span_id);
      }
      EXPECT_EQ(obs::current_trace_context().span_id, outer.span_id);
    }
    EXPECT_FALSE(obs::current_trace_context().valid());
  }).join();
}

#if PSA_OBS_ENABLED

/// Span recording on for one test, recorder wiped afterwards.
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() {
    obs::TraceRecorder::global().clear();
    obs::set_enabled(true);
  }
  ~ObsEnabledGuard() {
    obs::set_enabled(false);
    obs::TraceRecorder::global().clear();
  }
};

// ---------------------------------------------------------------------------
// Cross-thread propagation

TEST(TracePropagation, ForkJoinChunksJoinTheCallersTrace) {
  tests::ThreadCountGuard thread_guard;
  set_thread_count(4);
  ObsEnabledGuard guard;

  obs::TraceContext root_ctx;
  {
    obs::Span root("tracing_test.root");
    root_ctx = root.context();
    std::vector<double> v(512, 1.0);
    parallel_for(0, v.size(), 0,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) v[i] *= 2.0;
                 });
  }
  ASSERT_TRUE(root_ctx.valid());

  // Every parallel.chunk span in the root's trace parents under the root
  // span, whichever thread it ran on — the chunk count depends on the pool
  // but at least one chunk must have been recorded.
  std::size_t chunks = 0;
  for (const obs::SpanRecord& rec :
       obs::TraceRecorder::global().snapshot_trace(root_ctx.trace_hi,
                                                   root_ctx.trace_lo)) {
    if (std::string(rec.name) != "parallel.chunk") continue;
    ++chunks;
    EXPECT_EQ(rec.trace_hi, root_ctx.trace_hi);
    EXPECT_EQ(rec.trace_lo, root_ctx.trace_lo);
    EXPECT_EQ(rec.parent_span_id, root_ctx.span_id)
        << "chunk span did not parent under the caller's span";
  }
  EXPECT_GE(chunks, 1u);
}

TEST(TracePropagation, ServingExecutorInheritsSubmitterContext) {
  ObsEnabledGuard guard;
  net::ServingConfig cfg;
  cfg.workers = 1;
  net::ServingQueue queue(cfg);

  const obs::TraceContext submitter = obs::make_trace_context();
  obs::TraceContext seen_by_job;
  std::optional<net::ServingQueue::Ticket> ticket;
  {
    obs::TraceContextScope scope(submitter);
    ticket = queue.submit("", [&seen_by_job] {
      seen_by_job = obs::current_trace_context();
      return net::ServingResult{200, "text/plain", "ok"};
    });
  }
  ASSERT_TRUE(ticket.has_value());
  EXPECT_FALSE(ticket->coalesced);
  EXPECT_TRUE(ticket->exec_ctx.same_trace(submitter));
  ASSERT_EQ(ticket->result.get().body, "ok");

  // The executor thread ran the job inside the submitter's trace, under a
  // serving.execute span belonging to that same trace.
  EXPECT_TRUE(seen_by_job.same_trace(submitter));
  std::size_t exec_spans = 0;
  for (const obs::SpanRecord& rec :
       obs::TraceRecorder::global().snapshot_trace(submitter.trace_hi,
                                                   submitter.trace_lo)) {
    if (std::string(rec.name) == "serving.execute") ++exec_spans;
  }
  EXPECT_EQ(exec_spans, 1u);
}

TEST(TracePropagation, CoalescedSubmitterRecordsLinkSpan) {
  ObsEnabledGuard guard;
  net::ServingConfig cfg;
  cfg.workers = 1;
  net::ServingQueue queue(cfg);

  // Park the single worker on the group so the second submission finds the
  // key pending and coalesces instead of executing.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  const obs::TraceContext winner = obs::make_trace_context();
  std::optional<net::ServingQueue::Ticket> first;
  {
    obs::TraceContextScope scope(winner);
    first = queue.submit("scan:deadbeef", [gate] {
      gate.wait();
      return net::ServingResult{200, "text/plain", "winner"};
    });
  }
  ASSERT_TRUE(first.has_value());

  const obs::TraceContext loser = obs::make_trace_context();
  std::optional<net::ServingQueue::Ticket> second;
  {
    obs::TraceContextScope scope(loser);
    second = queue.submit("scan:deadbeef", [] {
      return net::ServingResult{500, "text/plain", "never runs"};
    });
  }
  release.set_value();

  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->coalesced);
  // The coalesced ticket carries the winning group's context...
  EXPECT_TRUE(second->exec_ctx.same_trace(winner));
  EXPECT_EQ(second->result.get().body, "winner");
  EXPECT_EQ(first->result.get().body, "winner");

  // ...and the loser's trace holds a link-span pointing at it.
  std::size_t links = 0;
  for (const obs::SpanRecord& rec :
       obs::TraceRecorder::global().snapshot_trace(loser.trace_hi,
                                                   loser.trace_lo)) {
    if (std::string(rec.name) != "serving.coalesced.link") continue;
    ++links;
    EXPECT_EQ(rec.link_trace_hi, winner.trace_hi);
    EXPECT_EQ(rec.link_trace_lo, winner.trace_lo);
  }
  EXPECT_EQ(links, 1u);
}

TEST(TraceTree, ExportNestsChildrenUnderTheirParents) {
  ObsEnabledGuard guard;
  obs::TraceContext root_ctx;
  {
    obs::Span root("tracing_test.tree_root");
    root_ctx = root.context();
    obs::Span child("tracing_test.tree_child", {{"k", 1}});
  }
  ASSERT_EQ(obs::TraceRecorder::global()
                .snapshot_trace(root_ctx.trace_hi, root_ctx.trace_lo)
                .size(),
            2u);

  std::ostringstream os;
  obs::TraceRecorder::global().write_trace_tree_json(root_ctx.trace_hi,
                                                     root_ctx.trace_lo, os);
  const std::string tree = os.str();
  const std::size_t root_at = tree.find("tracing_test.tree_root");
  const std::size_t child_at = tree.find("tracing_test.tree_child");
  ASSERT_NE(root_at, std::string::npos);
  ASSERT_NE(child_at, std::string::npos);
  EXPECT_LT(root_at, child_at) << "child rendered outside its parent";
  EXPECT_NE(tree.find(obs::trace_id_hex(root_ctx)), std::string::npos);
}

#endif  // PSA_OBS_ENABLED

// ---------------------------------------------------------------------------
// HTTP plumbing

TEST(TracingHttp, EveryResponseCarriesATraceId) {
  net::HttpServer server;
  server.handle("/ctx", [](const net::HttpRequest&) {
    net::HttpResponse resp;
    resp.body = obs::trace_id_hex(obs::current_trace_context()) + "\n";
    return resp;
  });
  ASSERT_TRUE(server.start());

  const std::string resp = http_get(server.port(), "/ctx");
  const std::string id = header_value(resp, "X-PSA-Trace-Id");
  ASSERT_EQ(id.size(), 32u);
  EXPECT_TRUE(is_hex(id));
  // The handler ran inside the request's context: body id == header id.
  EXPECT_EQ(body_of(resp), id + "\n");
  server.stop();
}

TEST(TracingHttp, TraceparentHeaderIsAdopted) {
  net::HttpServer server;
  server.handle("/ctx", [](const net::HttpRequest&) {
    net::HttpResponse resp;
    resp.body = obs::trace_id_hex(obs::current_trace_context()) + "\n";
    return resp;
  });
  ASSERT_TRUE(server.start());

  const std::string sent_trace = "4bf92f3577b34da6a3ce929d0e0e4736";
  const std::string resp = raw_request(
      server.port(),
      "GET /ctx HTTP/1.1\r\nHost: localhost\r\ntraceparent: 00-" +
          sent_trace + "-00f067aa0ba902b7-01\r\n\r\n");
  EXPECT_EQ(header_value(resp, "X-PSA-Trace-Id"), sent_trace);
  EXPECT_EQ(body_of(resp), sent_trace + "\n");

  // A malformed traceparent falls back to a fresh id, never a 4xx.
  const std::string bad = raw_request(
      server.port(),
      "GET /ctx HTTP/1.1\r\nHost: localhost\r\n"
      "traceparent: 00-garbage-garbage-01\r\n\r\n");
  EXPECT_NE(bad.find("200 OK"), std::string::npos);
  const std::string fresh = header_value(bad, "X-PSA-Trace-Id");
  ASSERT_EQ(fresh.size(), 32u);
  EXPECT_NE(fresh, sent_trace);
  server.stop();
}

TEST(TracingHttp, EventsMetaLineExposesOldestSeqForStaleCursors) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.emit(obs::Severity::kInfo, "tracing_test.tick", {{"i", double(i)}});
  }
  // Ring of 4 holding seqs 7..10: a consumer resuming from cursor 0 has a
  // gap (0 + 1 < oldest_seq), one resuming from 6 does not.
  EXPECT_EQ(log.last_seq(), 10u);
  EXPECT_EQ(log.oldest_seq(), 7u);
  EXPECT_EQ(log.dropped(), 6u);

  net::HttpServer server;
  net::install_telemetry_endpoints(server, &log, nullptr);
  ASSERT_TRUE(server.start());
  const std::string body =
      body_of(http_get(server.port(), "/events?since=0"));
  ASSERT_FALSE(body.empty());

  // First line is the meta object; events follow, starting at oldest_seq.
  const std::string first = body.substr(0, body.find('\n'));
  EXPECT_NE(first.find("\"meta\":\"events\""), std::string::npos);
  EXPECT_NE(first.find("\"oldest_seq\":7"), std::string::npos);
  EXPECT_NE(first.find("\"last_seq\":10"), std::string::npos);
  EXPECT_NE(first.find("\"dropped\":6"), std::string::npos);
  EXPECT_NE(body.find("\"seq\":7"), std::string::npos);
  EXPECT_EQ(body.find("\"seq\":6"), std::string::npos);
  server.stop();
}

TEST(TracingHttp, MetricsRenderTraceIdExemplars) {
  obs::Histogram& h =
      obs::Registry::global().histogram("tracing_test.exemplar_us");
  h.record(5.0);
  const std::string trace = "feedfacefeedfacefeedfacefeedface";
  h.note_exemplar(5.0, trace);

  std::ostringstream os;
  obs::render_prometheus(obs::Registry::global().snapshot(), os);
  const std::string text = os.str();
  // OpenMetrics exemplar syntax on a bucket line of our histogram.
  const std::size_t at = text.find("tracing_test_exemplar_us_bucket");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(text.find("# {trace_id=\"" + trace + "\"}", at),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder

/// A 4-chip fleet where chip 1 throws at tick 2 — a deterministic freeze
/// trigger (quarantine) that needs no detector to fire.
std::vector<fleet::ChipSpec> faulting_fleet() {
  std::vector<fleet::ChipSpec> specs = fleet::make_fleet_specs(
      4, 2, tests::kGoldenSeed, tests::light_config());
  specs[1].tick_hook = [](std::size_t tick) {
    if (tick == 2) throw std::runtime_error("simulated chip fault");
  };
  return specs;
}

TEST(FlightRecorder, QuarantineFreezesTheBlackbox) {
  tests::ThreadCountGuard guard;
  fleet::FleetConfig cfg;
  cfg.per_chip_metrics = false;
  fleet::FleetEngine engine(faulting_fleet(), cfg);
  ASSERT_EQ(engine.run_ticks(4), 4u);

  ASSERT_TRUE(engine.session(1).has_blackbox());
  EXPECT_FALSE(engine.session(0).has_blackbox());
  const std::string bundle = engine.session(1).blackbox_json();
  EXPECT_NE(bundle.find("\"chip\": 1"), std::string::npos);
  EXPECT_NE(bundle.find("\"reason\": \"quarantined\""), std::string::npos);
  EXPECT_NE(bundle.find("\"quarantine_cause\": \"exception\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"frozen_at_us\""), std::string::npos);
  // Ticks 0 and 1 completed before the throw: two window records.
  EXPECT_NE(bundle.find("\"tick\": 0"), std::string::npos);
  EXPECT_NE(bundle.find("\"tick\": 1"), std::string::npos);
  EXPECT_EQ(bundle.find("\"tick\": 2"), std::string::npos);

  // chips_json advertises which chips hold a frozen bundle.
  const std::string chips = engine.chips_json();
  EXPECT_NE(chips.find("\"blackbox\":true"), std::string::npos);
  EXPECT_NE(chips.find("\"blackbox\":false"), std::string::npos);
  // healthz surfaces the event-ring drop counter.
  EXPECT_NE(engine.healthz_json().find("\"events_dropped\":"),
            std::string::npos);
}

TEST(FlightRecorder, BlackboxIsDeterministicModuloWallClock) {
  tests::ThreadCountGuard guard;
  fleet::FleetConfig cfg;
  cfg.per_chip_metrics = false;
  fleet::FleetEngine a(faulting_fleet(), cfg);
  fleet::FleetEngine b(faulting_fleet(), cfg);
  ASSERT_EQ(a.run_ticks(4), 4u);
  ASSERT_EQ(b.run_ticks(4), 4u);

  const std::string ba = a.session(1).blackbox_json();
  const std::string bb = b.session(1).blackbox_json();
  ASSERT_FALSE(ba.empty());
  ASSERT_FALSE(bb.empty());
  // Same seed, same fault: byte-identical after dropping the wall-clock
  // lines (key ends _us") — z-scores, verdicts, ticks, detector slots all
  // reproduce exactly.
  EXPECT_EQ(strip_wallclock_lines(ba), strip_wallclock_lines(bb));
}

TEST(FlightRecorder, TakeFreshDrainsOnceAndWindowZeroDisables) {
  tests::ThreadCountGuard guard;
  fleet::FleetConfig cfg;
  cfg.per_chip_metrics = false;
  fleet::FleetEngine engine(faulting_fleet(), cfg);
  ASSERT_EQ(engine.run_ticks(4), 4u);

  // take_fresh returns the bundle exactly once per freeze; blackbox_json
  // keeps serving it (the HTTP endpoint is idempotent, the monitord dump
  // loop is not re-triggered).
  fleet::ChipSession& bad = engine.session(1);
  EXPECT_FALSE(bad.take_fresh_blackbox().empty());
  EXPECT_TRUE(bad.take_fresh_blackbox().empty());
  EXPECT_TRUE(bad.has_blackbox());
  EXPECT_FALSE(bad.blackbox_json().empty());

  // blackbox_window = 0 turns the recorder off entirely.
  fleet::FleetConfig off = cfg;
  off.blackbox_window = 0;
  fleet::FleetEngine disabled(faulting_fleet(), off);
  ASSERT_EQ(disabled.run_ticks(4), 4u);
  EXPECT_TRUE(disabled.session(1).quarantined());
  EXPECT_FALSE(disabled.session(1).has_blackbox());
}

TEST(FlightRecorder, BlackboxServedOverHttp) {
  tests::ThreadCountGuard guard;
  fleet::FleetConfig cfg;
  cfg.per_chip_metrics = false;
  fleet::FleetEngine engine(faulting_fleet(), cfg);
  ASSERT_EQ(engine.run_ticks(4), 4u);

  net::HttpServer server;
  fleet::install_fleet_endpoints(server, &engine);
  ASSERT_TRUE(server.start());

  const std::string hit =
      http_get(server.port(), "/fleet/chips/1/blackbox");
  EXPECT_NE(hit.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(hit), engine.session(1).blackbox_json());

  // No frozen bundle / bad chip index / bad tail all answer 404.
  EXPECT_NE(http_get(server.port(), "/fleet/chips/0/blackbox")
                .find("404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/fleet/chips/99/blackbox")
                .find("404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/fleet/chips/1/bogus").find("404"),
            std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace psa
