// Trojan behavioural models: triggers, payload envelopes, gate budgets.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "aes/activity.hpp"
#include "dsp/spectrum.hpp"
#include "trojan/trojan.hpp"

namespace psa::trojan {
namespace {

TrojanContext make_context(std::size_t n_cycles,
                           aes::PlaintextMode mode = aes::PlaintextMode::kRandom,
                           aes::CoreActivityTrace* keep = nullptr) {
  static aes::CoreActivityTrace trace;  // referenced by the returned context
  aes::ActivityConfig cfg;
  cfg.mode = mode;
  const aes::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const aes::AesActivityModel model(key, cfg, 77);
  trace = model.generate(n_cycles);
  if (keep != nullptr) *keep = trace;
  TrojanContext ctx;
  ctx.encryptions = trace.encryptions;
  ctx.key = key;
  ctx.seed = 5;
  return ctx;
}

TEST(TrojanMeta, NamesAndDescriptions) {
  EXPECT_EQ(module_name(TrojanKind::kT1AmCarrier), "t1");
  EXPECT_EQ(module_name(TrojanKind::kT4DoS), "t4");
  EXPECT_FALSE(describe(TrojanKind::kT3CdmaLeak).empty());
  EXPECT_EQ(all_trojan_kinds().size(), 4u);
}

TEST(TrojanMeta, GateCountsMatchTableII) {
  EXPECT_EQ(gate_count(TrojanKind::kT1AmCarrier), 1881u);
  EXPECT_EQ(gate_count(TrojanKind::kT2KeyLeak), 2132u);
  EXPECT_EQ(gate_count(TrojanKind::kT3CdmaLeak), 329u);
  EXPECT_EQ(gate_count(TrojanKind::kT4DoS), 2181u);
}

TEST(TrojanMeta, T1CounterPeriodIsPaperValue) {
  EXPECT_EQ(kT1CounterPeriod, 0x1FFFFFu);
}

TEST(TrojanBase, DisabledPayloadIsSilent) {
  const TrojanContext ctx = make_context(256);
  for (TrojanKind kind : all_trojan_kinds()) {
    const auto t = make_trojan(kind);
    EXPECT_FALSE(t->enabled());
    const auto p = t->payload_toggles(ctx, 256);
    for (double v : p) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(TrojanBase, TriggerCircuitsAlwaysTick) {
  const TrojanContext ctx = make_context(64);
  for (TrojanKind kind : all_trojan_kinds()) {
    const auto t = make_trojan(kind);
    const auto trig = t->trigger_toggles(ctx, 64);
    const double total = std::accumulate(trig.begin(), trig.end(), 0.0);
    EXPECT_GT(total, 0.0) << module_name(kind);
  }
}

TEST(TrojanBase, ActivationCycleDelaysPayload) {
  const TrojanContext ctx = make_context(512);
  const auto t = make_trojan(TrojanKind::kT4DoS);
  t->set_enabled(true);
  t->set_activation_cycle(200);
  const auto p = t->payload_toggles(ctx, 512);
  for (std::size_t c = 0; c < 200; ++c) EXPECT_DOUBLE_EQ(p[c], 0.0);
  double after = 0.0;
  for (std::size_t c = 200; c < 512; ++c) after += p[c];
  EXPECT_GT(after, 0.0);
}

TEST(TrojanT1, EnvelopeCarries750kHzAm) {
  const TrojanContext ctx = make_context(8192);
  TrojanT1 t1;
  t1.set_enabled(true);
  const auto p = t1.payload_toggles(ctx, 8192);
  // The per-cycle sequence is sampled at 33 MHz; its spectrum must show the
  // 750 kHz AM line.
  const dsp::Spectrum s =
      dsp::amplitude_spectrum(p, ctx.clock_hz, dsp::WindowKind::kHann);
  const std::size_t pk = s.peak_bin(0.4e6, 1.2e6);
  EXPECT_NEAR(s.freq_hz[pk], TrojanT1::kAmHz, 40.0e3);
}

TEST(TrojanT1, BeatComponentAt15MHz) {
  const TrojanContext ctx = make_context(8192);
  TrojanT1 t1;
  t1.set_enabled(true);
  const auto p = t1.payload_toggles(ctx, 8192);
  const dsp::Spectrum s =
      dsp::amplitude_spectrum(p, ctx.clock_hz, dsp::WindowKind::kHann);
  // Energy at the payload beat (15 MHz) well above the floor near 10 MHz.
  EXPECT_GT(s.value_at(kPayloadBeatHz), 10.0 * s.value_at(10.0e6));
}

TEST(TrojanT2, TriggersOnlyOnPrefix) {
  aes::Block pt{};
  EXPECT_FALSE(TrojanT2::triggers(pt));
  pt[0] = 0xAA;
  EXPECT_FALSE(TrojanT2::triggers(pt));
  pt[1] = 0xAA;
  EXPECT_TRUE(TrojanT2::triggers(pt));
}

TEST(TrojanT2, SilentUnderRandomTraffic) {
  // Random plaintexts essentially never carry the 0xAAAA prefix, so an
  // enabled T2 stays quiet — the paper's trigger semantics.
  const TrojanContext ctx = make_context(2048, aes::PlaintextMode::kRandom);
  TrojanT2 t2;
  t2.set_enabled(true);
  const auto p = t2.payload_toggles(ctx, 2048);
  EXPECT_DOUBLE_EQ(std::accumulate(p.begin(), p.end(), 0.0), 0.0);
}

TEST(TrojanT2, BurstsAlignWithTriggeredEncryptions) {
  aes::CoreActivityTrace trace;
  const TrojanContext ctx =
      make_context(2048, aes::PlaintextMode::kTriggerT2, &trace);
  TrojanT2 t2;
  t2.set_enabled(true);
  const auto p = t2.payload_toggles(ctx, 2048);
  ASSERT_FALSE(ctx.encryptions.empty());
  // Activity exists exactly in round cycles of triggered encryptions.
  for (const aes::EncryptionEvent& e : ctx.encryptions) {
    double burst = 0.0;
    for (int r = 1; r <= 10; ++r) {
      burst += p[e.start_cycle + static_cast<std::size_t>(r)];
    }
    EXPECT_GT(burst, 0.0);
  }
}

TEST(TrojanT3, LfsrIsMaximalLength) {
  std::uint16_t state = 1;
  std::set<std::uint16_t> seen;
  for (int i = 0; i < (1 << 15) - 1; ++i) {
    EXPECT_TRUE(seen.insert(state).second) << "cycle at step " << i;
    state = TrojanT3::lfsr_next(state);
    EXPECT_NE(state, 0u);
  }
  EXPECT_EQ(state, 1u);  // full period returns to the start
  EXPECT_EQ(seen.size(), static_cast<std::size_t>((1 << 15) - 1));
}

TEST(TrojanT3, ChipsHoldForChipPeriod) {
  const TrojanContext ctx = make_context(4096);
  TrojanT3 t3;
  t3.set_enabled(true);
  const auto p = t3.payload_toggles(ctx, 4096);
  // Within one chip period the on/off state cannot change (only the beat
  // amplitude varies); check the binary gate via zero/nonzero pattern per
  // chip block.
  for (std::size_t chip = 0; chip + 1 < 4096 / TrojanT3::kCyclesPerChip;
       ++chip) {
    bool any_on = false;
    bool any_off = false;
    for (std::size_t c = 0; c < TrojanT3::kCyclesPerChip; ++c) {
      const double v = p[chip * TrojanT3::kCyclesPerChip + c];
      // The beat can make individual samples ~0 even when gated on, so
      // compare against the gate via a loose classification.
      (v > 0.0 ? any_on : any_off) = true;
    }
    // A chip can be all-off, but if it is on, some samples must be nonzero.
    EXPECT_TRUE(any_on || any_off);
  }
  // Roughly half the chips transmit (PN xor key bits is balanced).
  std::size_t on_chips = 0;
  const std::size_t n_chips = 4096 / TrojanT3::kCyclesPerChip;
  for (std::size_t chip = 0; chip < n_chips; ++chip) {
    double sum = 0.0;
    for (std::size_t c = 0; c < TrojanT3::kCyclesPerChip; ++c) {
      sum += p[chip * TrojanT3::kCyclesPerChip + c];
    }
    if (sum > 0.0) ++on_chips;
  }
  EXPECT_GT(on_chips, n_chips / 4);
  EXPECT_LT(on_chips, 3 * n_chips / 4);
}

TEST(TrojanT4, NearConstantEnvelope) {
  const TrojanContext ctx = make_context(4096);
  TrojanT4 t4;
  t4.set_enabled(true);
  const auto p = t4.payload_toggles(ctx, 4096);
  // Average per 32-cycle window: the beat averages out, leaving the DoS
  // load with only its 3 % ripple.
  std::vector<double> windows;
  for (std::size_t w = 0; w + 32 <= p.size(); w += 32) {
    windows.push_back(std::accumulate(p.begin() + static_cast<std::ptrdiff_t>(w),
                                      p.begin() + static_cast<std::ptrdiff_t>(w + 32), 0.0));
  }
  const double mean =
      std::accumulate(windows.begin(), windows.end(), 0.0) /
      static_cast<double>(windows.size());
  for (double v : windows) EXPECT_NEAR(v, mean, mean * 0.12);
}

TEST(TrojanT4, ScalesWithGateCount) {
  const TrojanContext ctx = make_context(256);
  TrojanT4 t4;
  t4.set_enabled(true);
  const auto p = t4.payload_toggles(ctx, 256);
  const double peak = *std::max_element(p.begin(), p.end());
  EXPECT_LE(peak, static_cast<double>(gate_count(TrojanKind::kT4DoS)));
  EXPECT_GT(peak, 0.5 * static_cast<double>(gate_count(TrojanKind::kT4DoS)));
}

}  // namespace
}  // namespace psa::trojan
