// bench_diff — compare two machine-readable bench reports (BENCH_*.json)
// and fail when performance regressed in either direction that matters:
//
//   * rate fields (leaf ends in "_per_s" or contains "throughput") must not
//     FALL more than the threshold;
//   * latency fields (leaf ends in "_ms" or "_us") must not RISE more than
//     the threshold — a slowdown that hides from the throughput fields
//     (e.g. a p99 or per-phase timing) fails the gate too.
//
//   * budget fields (leaf ends in "overhead_pct") must not EXCEED the
//     absolute --overhead-budget percentage (default 2.0, the
//     observability budget; negative disables) — gated on the NEW file
//     alone, so a freshly added traced arm is gated from its first run.
//
//   bench_diff OLD.json NEW.json [--threshold 0.15] [--key-suffix _per_s]
//              [--overhead-budget 2.0]
//
// Fields present in only one file are reported but not fatal (bench shape
// may evolve). The comparison logic lives in bench_diff_lib.hpp so the unit
// tests run exactly what CI runs.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_diff_lib.hpp"

namespace {

bool load(const char* path, std::map<std::string, double>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!benchdiff::flatten_json(buf.str(), out, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  double overhead_budget = 2.0;
  std::string suffix = "_per_s";
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--overhead-budget" && i + 1 < argc) {
      overhead_budget = std::strtod(argv[++i], nullptr);
    } else if (arg == "--key-suffix" && i + 1 < argc) {
      suffix = argv[++i];
    } else if (!old_path) {
      old_path = argv[i];
    } else if (!new_path) {
      new_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (!old_path || !new_path) {
    std::fprintf(stderr,
                 "usage: bench_diff OLD.json NEW.json [--threshold 0.15] "
                 "[--key-suffix _per_s] [--overhead-budget 2.0]\n");
    return 2;
  }

  std::map<std::string, double> before, after;
  if (!load(old_path, &before) || !load(new_path, &after)) return 2;

  const benchdiff::CompareResult result =
      benchdiff::compare(before, after, threshold, suffix, overhead_budget);
  for (const std::string& line : result.lines) {
    std::printf("%s\n", line.c_str());
  }

  if (result.compared == 0) {
    std::fprintf(stderr, "bench_diff: no comparable fields found\n");
    return 2;
  }
  if (result.regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d field(s) regressed more than %.0f%%\n",
                 result.regressions, threshold * 100.0);
    return 1;
  }
  std::printf("bench_diff: %d field(s) within %.0f%% of %s\n", result.compared,
              threshold * 100.0, old_path);
  return 0;
}
