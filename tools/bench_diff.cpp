// bench_diff — compare two machine-readable bench reports (BENCH_*.json)
// and fail when throughput regressed.
//
//   bench_diff OLD.json NEW.json [--threshold 0.15] [--key-suffix _per_s]
//
// The files are the JSON objects the harnesses emit with --out. Every
// numeric field is flattened to a dotted path ("after.traces_per_s");
// fields whose leaf name ends in the key suffix (default "_per_s") or
// contains "throughput" are treated as higher-is-better rates. Exit 1 if
// any such rate in NEW fell below OLD * (1 - threshold); rates present in
// only one file are reported but not fatal (bench shape may evolve).
//
// The parser handles exactly the JSON these tools write — objects, arrays,
// strings, numbers, booleans, null — with no dependency beyond the
// standard library. Numbers in arrays are flattened with an index path
// ("series.3.v") so array-shaped reports diff too.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

/// Recursive-descent reader that records every numeric leaf into `out`.
/// Returns false (with a message on stderr) on malformed input.
class FlattenParser {
 public:
  FlattenParser(const std::string& text, std::map<std::string, double>* out)
      : text_(text), out_(out) {}

  bool run() {
    skip_ws();
    if (!parse_value("")) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return true;
  }

 private:
  bool fail(const char* what) {
    std::fprintf(stderr, "bench_diff: JSON error at byte %zu: %s\n", pos_,
                 what);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parse_string(std::string* s) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    s->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':  // keep the raw escape; paths never need code points
            s->push_back('\\');
            c = 'u';
            break;
          default: c = esc; break;
        }
      }
      s->push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(const std::string& path) {
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string ignored;
      return parse_string(&ignored);
    }
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    // Number.
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return fail("expected value");
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    (*out_)[path] = v;
    return true;
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      if (!parse_value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    std::size_t index = 0;
    while (true) {
      skip_ws();
      if (!parse_value(path + "." + std::to_string(index++))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::map<std::string, double>* out_;
  std::size_t pos_ = 0;
};

bool load(const char* path, std::map<std::string, double>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return FlattenParser(text, out).run();
}

bool leaf_is_rate(const std::string& path, const std::string& suffix) {
  const std::size_t dot = path.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? path : path.substr(dot + 1);
  if (leaf.size() >= suffix.size() &&
      leaf.compare(leaf.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return true;
  }
  return leaf.find("throughput") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  std::string suffix = "_per_s";
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--key-suffix" && i + 1 < argc) {
      suffix = argv[++i];
    } else if (!old_path) {
      old_path = argv[i];
    } else if (!new_path) {
      new_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (!old_path || !new_path) {
    std::fprintf(stderr,
                 "usage: bench_diff OLD.json NEW.json [--threshold 0.15] "
                 "[--key-suffix _per_s]\n");
    return 2;
  }

  std::map<std::string, double> before, after;
  if (!load(old_path, &before) || !load(new_path, &after)) return 2;

  int regressions = 0;
  int compared = 0;
  for (const auto& [path, old_v] : before) {
    if (!leaf_is_rate(path, suffix)) continue;
    const auto it = after.find(path);
    if (it == after.end()) {
      std::printf("  ?  %-40s only in %s\n", path.c_str(), old_path);
      continue;
    }
    ++compared;
    const double new_v = it->second;
    const double change = old_v != 0.0 ? (new_v - old_v) / old_v : 0.0;
    const bool bad = new_v < old_v * (1.0 - threshold);
    std::printf("  %s  %-40s %12.2f -> %12.2f  (%+.1f%%)\n",
                bad ? "FAIL" : " ok ", path.c_str(), old_v, new_v,
                change * 100.0);
    if (bad) ++regressions;
  }
  for (const auto& [path, v] : after) {
    if (leaf_is_rate(path, suffix) && !before.count(path)) {
      std::printf("  ?  %-40s only in %s (%.2f)\n", path.c_str(), new_path,
                  v);
    }
  }

  if (compared == 0) {
    std::fprintf(stderr, "bench_diff: no comparable rate fields found\n");
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d rate(s) regressed more than %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  std::printf("bench_diff: %d rate(s) within %.0f%% of %s\n", compared,
              threshold * 100.0, old_path);
  return 0;
}
