// bench_diff_lib.hpp — the comparison engine behind tools/bench_diff,
// header-only so the unit tests exercise exactly the logic CI runs.
//
// A bench report is flattened to dotted numeric paths ("after.traces_per_s")
// and each leaf is classified by name:
//
//   * leaf ends with the rate suffix (default "_per_s") or contains
//     "throughput"  -> higher is better; fail when NEW < OLD*(1-threshold)
//   * leaf ends with "_ms" or "_us"  -> lower is better (latency); fail
//     when NEW > OLD*(1+threshold)
//   * leaf ends with "overhead_pct"  -> absolute budget, not a relative
//     diff: fail when the NEW value exceeds `overhead_budget` percent
//     (default 2.0 — the observability budget; negative disables). The
//     OLD value is irrelevant: "tracing costs < 2%" is a property of the
//     new build alone.
//   * anything else  -> not gated
//
// Fields present in only one file are reported but never fatal — bench
// shape evolves across PRs and the gate must not block adding a new arm
// (budget leaves are the exception: they gate on the NEW file alone).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace benchdiff {

/// Recursive-descent reader that records every numeric leaf into `out`.
/// Handles exactly the JSON the bench harnesses write — objects, arrays,
/// strings, numbers, booleans, null. Array elements get an index path
/// ("series.3.v"). Returns false with a message in *error on bad input.
class FlattenParser {
 public:
  FlattenParser(const std::string& text, std::map<std::string, double>* out,
                std::string* error)
      : text_(text), out_(out), error_(error) {}

  bool run() {
    skip_ws();
    if (!parse_value("")) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = "JSON error at byte " + std::to_string(pos_) + ": " + what;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parse_string(std::string* s) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    s->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':  // keep the raw escape; paths never need code points
            s->push_back('\\');
            c = 'u';
            break;
          default: c = esc; break;
        }
      }
      s->push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(const std::string& path) {
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string ignored;
      return parse_string(&ignored);
    }
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    // Number.
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return fail("expected value");
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    (*out_)[path] = v;
    return true;
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      if (!parse_value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    std::size_t index = 0;
    while (true) {
      skip_ws();
      if (!parse_value(path + "." + std::to_string(index++))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::map<std::string, double>* out_;
  std::string* error_;
  std::size_t pos_ = 0;
};

inline bool flatten_json(const std::string& text,
                         std::map<std::string, double>* out,
                         std::string* error) {
  return FlattenParser(text, out, error).run();
}

enum class Direction {
  kHigherIsBetter,  // throughput-style: regression = falling
  kLowerIsBetter,   // latency-style: regression = rising
  kBudget,          // absolute ceiling on the NEW value (overhead_pct)
  kUngated,         // config / metadata: never compared
};

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Classification by leaf name (the last dotted component).
inline Direction classify_leaf(const std::string& path,
                               const std::string& rate_suffix) {
  const std::size_t dot = path.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? path : path.substr(dot + 1);
  if (ends_with(leaf, rate_suffix) ||
      leaf.find("throughput") != std::string::npos) {
    return Direction::kHigherIsBetter;
  }
  // Detection-quality leaves: AUC can only fall by regression, never by
  // runner variance, so the ROC harness gates them at a tight threshold.
  if (ends_with(leaf, "_auc")) return Direction::kHigherIsBetter;
  // Budget leaves before the latency rule: "overhead_pct" must not match
  // nothing, and a hypothetical "overhead_pct_ms" should stay latency.
  if (ends_with(leaf, "overhead_pct")) return Direction::kBudget;
  if (ends_with(leaf, "_ms") || ends_with(leaf, "_us")) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kUngated;
}

struct CompareResult {
  int compared = 0;
  int regressions = 0;
  std::vector<std::string> lines;  // human-readable per-field report
};

/// Compare every gated field of `before` against `after` with the given
/// relative threshold. Missing fields produce report lines but no failures
/// — except budget leaves ("overhead_pct"), which are absolute ceilings on
/// the NEW file and fail whenever NEW > overhead_budget percent (negative
/// budget disables them).
inline CompareResult compare(const std::map<std::string, double>& before,
                             const std::map<std::string, double>& after,
                             double threshold,
                             const std::string& rate_suffix = "_per_s",
                             double overhead_budget = 2.0) {
  CompareResult result;
  char buf[256];
  for (const auto& [path, old_v] : before) {
    const Direction dir = classify_leaf(path, rate_suffix);
    if (dir == Direction::kUngated || dir == Direction::kBudget) continue;
    const auto it = after.find(path);
    if (it == after.end()) {
      std::snprintf(buf, sizeof(buf), "  ?  %-40s only in OLD", path.c_str());
      result.lines.push_back(buf);
      continue;
    }
    ++result.compared;
    const double new_v = it->second;
    const double change = old_v != 0.0 ? (new_v - old_v) / old_v : 0.0;
    const bool bad = dir == Direction::kHigherIsBetter
                         ? new_v < old_v * (1.0 - threshold)
                         : new_v > old_v * (1.0 + threshold);
    std::snprintf(buf, sizeof(buf),
                  "  %s  %-40s %12.2f -> %12.2f  (%+.1f%%)%s",
                  bad ? "FAIL" : " ok ", path.c_str(), old_v, new_v,
                  change * 100.0,
                  dir == Direction::kLowerIsBetter ? "  [lower-better]" : "");
    result.lines.push_back(buf);
    if (bad) ++result.regressions;
  }
  for (const auto& [path, v] : after) {
    const Direction dir = classify_leaf(path, rate_suffix);
    if (dir == Direction::kBudget) {
      if (overhead_budget < 0.0) continue;
      ++result.compared;
      const bool bad = v > overhead_budget;
      std::snprintf(buf, sizeof(buf),
                    "  %s  %-40s %12.2f  (budget <= %.2f%%)",
                    bad ? "FAIL" : " ok ", path.c_str(), v, overhead_budget);
      result.lines.push_back(buf);
      if (bad) ++result.regressions;
      continue;
    }
    if (dir != Direction::kUngated && before.count(path) == 0) {
      std::snprintf(buf, sizeof(buf), "  ?  %-40s only in NEW (%.2f)",
                    path.c_str(), v);
      result.lines.push_back(buf);
    }
  }
  return result;
}

}  // namespace benchdiff
