// make_goldens — regenerate the committed golden vectors in tests/golden.
//
// Usage: make_goldens [output_dir]
//
// Runs the four Trojan scenarios of tests/golden_common.hpp at the pinned
// seed and writes one .golden file per scenario. Regeneration over an
// unchanged tree is byte-identical (tests/golden_test asserts it), so a
// diff in these files always means the numerics actually moved — commit the
// new references only with the change that explains them.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "golden_common.hpp"

#ifndef PSA_GOLDEN_DIR
#define PSA_GOLDEN_DIR "tests/golden"
#endif

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : PSA_GOLDEN_DIR;

  // The goldens are thread-count independent by contract, but generate
  // serially anyway: the reference bits should never depend on the machine.
  psa::set_thread_count(1);

  std::printf("generating golden vectors (seed %llu) into %s\n",
              static_cast<unsigned long long>(psa::tests::kGoldenSeed),
              out_dir.c_str());
  const std::vector<psa::golden::GoldenRun> runs =
      psa::golden::compute_golden_runs();
  for (const psa::golden::GoldenRun& run : runs) {
    const std::string path = out_dir + "/" + run.name + ".golden";
    std::ofstream os(path, std::ios::binary);  // LF endings everywhere
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    os << psa::golden::serialize(run);
    std::printf("  %s: best_sensor=%llu localized=%d bins=%zu\n",
                path.c_str(),
                static_cast<unsigned long long>(run.best_sensor),
                run.localized ? 1 : 0, run.freq_hz.size());
  }

  // The detector-bank goldens: every registered detector's verdict bits on
  // the same four scenarios, one file for the whole bank.
  const psa::golden::DetectorGoldens dg =
      psa::golden::compute_detector_goldens();
  const std::string dpath = out_dir + "/detectors.golden";
  std::ofstream os(dpath, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", dpath.c_str());
    return 1;
  }
  os << psa::golden::serialize(dg);
  for (const psa::golden::DetectorGoldenRow& row : dg.rows) {
    std::string detected;
    for (const psa::golden::DetectorScenarioGolden& r : row.runs) {
      detected += r.detected ? '1' : '0';
    }
    std::printf("  %s: %s threshold=%g detected=%s\n", dpath.c_str(),
                row.name.c_str(), row.threshold, detected.c_str());
  }
  return 0;
}
