// psa_blackbox — human-friendly viewer for flight-recorder bundles.
//
// A blackbox bundle (GET /fleet/chips/<k>/blackbox, or the
// chip<k>_blackbox.json files psa_monitord drops under PSA_BLACKBOX_DIR) is
// deliberately machine-shaped: one field per line so forensic diffs can
// filter the wall-clock lines. This tool renders the window as a table with
// a z-score sparkline, so "what did the chip see in the ticks before the
// alarm" is one command:
//
//   psa_blackbox chip3_blackbox.json
//   curl -s localhost:9466/fleet/chips/3/blackbox | psa_blackbox -
//
// Flags:
//   --raw    echo the bundle verbatim (after validating it parses)
//
// Exit status: 0 on a well-formed bundle, 2 on parse/IO errors — so CI can
// use it as a cheap validator as well as a viewer.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Minimal field scraper for the bundle's fixed one-field-per-line shape:
/// every scalar sits on its own line as  "key": value[,]  — no nesting
/// ambiguity to resolve, so line-oriented parsing is exact, not heuristic.
struct Record {
  std::map<std::string, std::string> fields;  // raw value text by key
  std::string detectors;                      // the inline detectors object
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// "key" from a `"key": value` line ("" when the line is not a field).
std::string key_of(const std::string& line, std::string* value) {
  const std::size_t q0 = line.find('"');
  if (q0 == std::string::npos) return "";
  const std::size_t q1 = line.find('"', q0 + 1);
  if (q1 == std::string::npos) return "";
  const std::size_t colon = line.find(':', q1);
  if (colon == std::string::npos) return "";
  std::string v = trim(line.substr(colon + 1));
  if (!v.empty() && v.back() == ',') v.pop_back();
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    v = v.substr(1, v.size() - 2);
  }
  *value = v;
  return line.substr(q0 + 1, q1 - q0 - 1);
}

std::string spark(const std::vector<double>& v) {
  static const char* levels[] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  double lo = 1e300, hi = -1e300;
  for (const double x : v) {
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  std::string out;
  for (const double x : v) {
    const double t = hi > lo ? (x - lo) / (hi - lo) : 0.0;
    out += levels[static_cast<int>(t * 7.0 + 0.5)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool raw = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--raw") == 0) {
      raw = true;
    } else if (!path) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: psa_blackbox [--raw] FILE|-\n");
      return 2;
    }
  }
  if (!path) {
    std::fprintf(stderr, "usage: psa_blackbox [--raw] FILE|-\n");
    return 2;
  }

  std::string text;
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "psa_blackbox: cannot open %s\n", path);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  // Split header fields from window records by tracking whether we are
  // inside the "window" array; a record starts at "{" and ends at "}".
  std::map<std::string, std::string> header;
  std::vector<Record> window;
  bool in_window = false;
  Record current;
  bool in_record = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string t = trim(line);
    if (t == "\"window\": [") {
      in_window = true;
      continue;
    }
    if (!in_window) {
      std::string value;
      const std::string key = key_of(line, &value);
      if (!key.empty()) header[key] = value;
      continue;
    }
    if (t == "{") {
      in_record = true;
      current = Record{};
      continue;
    }
    if (t == "}" || t == "},") {
      if (in_record) window.push_back(current);
      in_record = false;
      continue;
    }
    if (!in_record) continue;
    std::string value;
    const std::string key = key_of(line, &value);
    if (key == "detectors") {
      current.detectors = value;
    } else if (!key.empty()) {
      current.fields[key] = value;
    }
  }

  if (header.find("chip") == header.end() ||
      header.find("reason") == header.end()) {
    std::fprintf(stderr,
                 "psa_blackbox: %s does not look like a blackbox bundle "
                 "(missing chip/reason)\n",
                 path);
    return 2;
  }

  if (raw) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }

  std::printf("blackbox: chip %s (%s)  trojan=%s cohort=%s seed=%s\n",
              header["chip"].c_str(), header["label"].c_str(),
              header["trojan"].c_str(), header["cohort"].c_str(),
              header["seed"].c_str());
  std::printf("frozen by: %s (detector=%s) at tick %s   alarms=%s "
              "mttd_ticks=%s quarantine=%s\n",
              header["reason"].c_str(), header["detector"].c_str(),
              header["trigger_tick"].c_str(), header["alarms"].c_str(),
              header["mttd_ticks"].c_str(),
              header["quarantine_cause"].c_str());

  std::vector<double> zs;
  zs.reserve(window.size());
  for (Record& r : window) zs.push_back(std::atof(r.fields["z"].c_str()));
  if (!zs.empty()) {
    std::printf("z window (%zu ticks): %s\n\n", zs.size(), spark(zs).c_str());
  }

  std::printf("%6s  %14s  %8s  %7s  %10s  %-32s  %s\n", "tick", "z", "detect",
              "alarm", "dur_us", "trace_id", "detectors");
  for (Record& r : window) {
    std::printf("%6s  %14s  %8s  %7s  %10s  %-32s  %s\n",
                r.fields["tick"].c_str(), r.fields["z"].c_str(),
                r.fields["detected"].c_str(), r.fields["alarmed"].c_str(),
                r.fields["dur_us"].c_str(),
                r.fields.count("trace_id") ? r.fields["trace_id"].c_str()
                                           : "-",
                r.detectors.empty() ? "{}" : r.detectors.c_str());
  }
  std::printf("\n%zu record(s)\n", window.size());
  return 0;
}
