// psa_monitord — long-running telemetry daemon around the run-time monitor.
//
// Drives the sentinel-sensor monitoring loop of Section VI-D continuously
// (rather than RuntimeMonitor's bounded, return-on-first-alarm run) over a
// scripted schedule: quiet traffic, a mid-run Trojan activation, and an
// optional measurement-fault window. While the loop runs, the process
// serves the live telemetry endpoints:
//
//   GET /metrics      Prometheus text exposition of the metrics registry
//   GET /healthz      liveness + schedule position + alarm count
//   GET /events       structured event log (JSON lines, ?since=SEQ&max=M)
//   GET /timeseries   background sampler's ring buffers as JSON
//
// so a scrape loop or a curl in a second terminal can watch enrollment,
// the z-score climbing after activation, the alarm event, and the fault
// arm/disarm transitions as they happen.
//
// Flags (beyond the shared --threads / --obs-out / --seed / --smoke):
//
//   --port N           HTTP port (default 0 = ephemeral, printed at start)
//   --bind ADDR        bind address            (default 127.0.0.1)
//   --traces N         schedule length; 0 = run until SIGINT/SIGTERM
//   --activate-at N    trace index where the Trojan payload switches on
//   --fault-at N       trace index where measurement faults arm (0 = never)
//   --fault-clear-at N trace index where the faults disarm
//   --interval-ms X    wall-clock pacing between traces
//   --sample-ms X      time-series sampler cadence
//   --linger-sec X     keep serving after the schedule finishes
//   --trojan t1..t4    payload kind                    (default t3)
//   --events-out FILE  mirror the event log to a JSONL sink
//
// Fleet mode (src/fleet): one daemon, many chips.
//
//   --fleet N             monitor N independent chip sessions instead of
//                         one (distinct placements, rotating Trojan mix,
//                         cohort-shared traffic schedules), driven by the
//                         batched tick scheduler; adds GET /fleet/healthz
//                         and GET /fleet/chips to the endpoints above
//   --cohort N            sessions per cohort (default 4)
//   --tick-deadline-us N  per-session tick deadline; a chip overrunning it
//                         repeatedly is quarantined (default 0 = off)
//
// Fleet mode also serves GET /fleet/chips/<k>/blackbox (the flight-recorder
// bundle frozen when chip k alarms or is quarantined) and, when the
// PSA_BLACKBOX_DIR environment variable names a directory, dumps every
// newly frozen bundle there as chip<k>_blackbox.json (atomic tmp+rename,
// latest freeze wins).
//
// In fleet mode --activate-at/--fault-at/... apply per the fleet spec:
// activation to every infected cohort, the fault window to cohort 0.
//
// --smoke selects the CI schedule (48 traces, activation at 16, a fault
// window at [32, 40), 50 ms pacing, 3 s linger) and makes the exit status
// meaningful: 0 iff at least one debounced alarm fired after activation.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/monitor.hpp"
#include "analysis/pipeline.hpp"
#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_http.hpp"
#include "net/http_exposition.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "sim/chip_simulator.hpp"

namespace {

std::atomic<bool> g_stop{false};

void request_stop(int) { g_stop.store(true, std::memory_order_relaxed); }

// Schedule position shared with the /healthz handler.
std::atomic<std::size_t> g_trace{0};
std::atomic<std::size_t> g_alarms{0};
std::atomic<double> g_last_z{0.0};
std::atomic<int> g_phase{0};  // 0 enroll, 1 quiet, 2 trojan-active, 3 linger

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "enrolling";
    case 1: return "quiet";
    case 2: return "trojan-active";
    default: return "linger";
  }
}

struct Schedule {
  std::size_t traces = 0;          // 0 = until signal
  std::size_t activate_at = 64;
  std::size_t fault_at = 0;        // 0 = never
  std::size_t fault_clear_at = 0;
  double interval_ms = 250.0;
  double sample_ms = 1000.0;
  double linger_sec = 0.0;
  psa::trojan::TrojanKind trojan = psa::trojan::TrojanKind::kT3CdmaLeak;
  // Fleet mode (0 = classic single-chip daemon).
  std::size_t fleet = 0;
  std::size_t cohort = 4;
  std::uint64_t tick_deadline_us = 0;
};

bool parse_extras(int argc, char** argv, Schedule* sched, int* port,
                  std::string* bind, std::string* events_out) {
  // Each optional flag overrides the smoke/default schedule already in
  // *sched; anything unrecognized is an error (this is a daemon, not a
  // bench wrapping a benchmark library with its own flags).
  const auto value = [&](int& i) -> const char* {
    return (i + 1 < argc) ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--port" && (v = value(i))) {
      *port = std::atoi(v);
    } else if (arg == "--bind" && (v = value(i))) {
      *bind = v;
    } else if (arg == "--traces" && (v = value(i))) {
      sched->traces = std::strtoul(v, nullptr, 10);
    } else if (arg == "--activate-at" && (v = value(i))) {
      sched->activate_at = std::strtoul(v, nullptr, 10);
    } else if (arg == "--fault-at" && (v = value(i))) {
      sched->fault_at = std::strtoul(v, nullptr, 10);
    } else if (arg == "--fault-clear-at" && (v = value(i))) {
      sched->fault_clear_at = std::strtoul(v, nullptr, 10);
    } else if (arg == "--interval-ms" && (v = value(i))) {
      sched->interval_ms = std::strtod(v, nullptr);
    } else if (arg == "--sample-ms" && (v = value(i))) {
      sched->sample_ms = std::strtod(v, nullptr);
    } else if (arg == "--linger-sec" && (v = value(i))) {
      sched->linger_sec = std::strtod(v, nullptr);
    } else if (arg == "--events-out" && (v = value(i))) {
      *events_out = v;
    } else if (arg == "--fleet" && (v = value(i))) {
      sched->fleet = std::strtoul(v, nullptr, 10);
    } else if (arg == "--cohort" && (v = value(i))) {
      sched->cohort = std::strtoul(v, nullptr, 10);
    } else if (arg == "--tick-deadline-us" && (v = value(i))) {
      sched->tick_deadline_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trojan" && (v = value(i))) {
      const std::string kind = v;
      using psa::trojan::TrojanKind;
      if (kind == "t1") sched->trojan = TrojanKind::kT1AmCarrier;
      else if (kind == "t2") sched->trojan = TrojanKind::kT2KeyLeak;
      else if (kind == "t3") sched->trojan = TrojanKind::kT3CdmaLeak;
      else if (kind == "t4") sched->trojan = TrojanKind::kT4DoS;
      else {
        std::fprintf(stderr, "unknown --trojan kind: %s (want t1..t4)\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Dump every blackbox frozen since the last call into `dir` as
/// chip<k>_blackbox.json. Atomic per file (tmp + rename, the same pattern
/// the obs export tail uses) so a reader never sees a half-written bundle;
/// a later freeze for the same chip overwrites with the newer window.
void dump_fresh_blackboxes(psa::fleet::FleetEngine& engine,
                           const std::string& dir) {
  for (std::size_t k = 0; k < engine.size(); ++k) {
    const std::string bundle = engine.session(k).take_fresh_blackbox();
    if (bundle.empty()) continue;
    const std::string path =
        dir + "/chip" + std::to_string(k) + "_blackbox.json";
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "psa_monitord: cannot write %s\n", tmp.c_str());
      continue;
    }
    out << bundle;
    out.close();
    if (!out.good() || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      continue;
    }
    PSA_EVENT(kInfo, "monitord.blackbox_dumped",
              {{"chip", k}, {"path", path}});
  }
}

/// Sleep `ms` in short slices so SIGINT lands within ~50 ms.
void interruptible_sleep_ms(double ms) {
  using clock = std::chrono::steady_clock;
  const auto until =
      clock::now() + std::chrono::duration<double, std::milli>(ms);
  while (!g_stop.load(std::memory_order_relaxed) && clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// --fleet N: the multi-tenant daemon. One FleetEngine drives N sessions
/// with the batched tick scheduler; the schedule's trace count/pacing
/// becomes the fleet tick count/pacing.
int run_fleet(const psa::bench::Args& args, const Schedule& sched, int port,
              const std::string& bind) {
  using namespace psa;

  // A fleet host trades per-trace resolution for session count: shorter
  // traces and a lighter enrollment keep 16+ sessions responsive while the
  // detector still clears its z threshold comfortably (the smoke requires
  // a real alarm).
  analysis::PipelineConfig pcfg;
  if (args.smoke) {
    pcfg.cycles_per_trace = 512;
    pcfg.enrollment_traces = 4;
  }
  std::vector<fleet::ChipSpec> specs =
      fleet::make_fleet_specs(sched.fleet, sched.cohort, args.seed, pcfg,
                              analysis::MonitorConfig{}, sched.activate_at);
  if (sched.fault_at != 0) {
    // The schedule's measurement-fault window lands on cohort 0 (the clean
    // cohort in the default mix), mirroring the single-chip schedule.
    fault::FaultPlan plan;
    plan.seed = args.seed;
    plan.measurement.noise_scale = 1.6;
    plan.measurement.temperature_offset_k = 6.0;
    for (fleet::ChipSpec& spec : specs) {
      if (spec.cohort == 0) {
        spec.fault_plan = plan;
        spec.fault_at = sched.fault_at;
        spec.fault_clear_at = sched.fault_clear_at;
      }
    }
  }
  fleet::FleetConfig fcfg;
  fcfg.tick_deadline_us = sched.tick_deadline_us;
  fleet::FleetEngine engine(std::move(specs), fcfg);

  obs::TimeSeriesConfig ts_cfg;
  ts_cfg.interval_s = sched.sample_ms / 1e3;
  obs::TimeSeriesSampler sampler(ts_cfg);
  sampler.start();

  net::HttpServer server;
  net::install_telemetry_endpoints(
      server, &obs::EventLog::global(), &sampler, [&engine] {
        const fleet::FleetRollup r = engine.rollup();
        std::ostringstream os;
        os << "\"mode\":\"fleet\",\"sessions\":" << r.sessions
           << ",\"trace\":" << r.ticks << ",\"alarms\":" << r.alarms
           << ",\"quarantined\":" << r.quarantined << ",\"phase\":\""
           << phase_name(g_phase.load(std::memory_order_relaxed)) << "\"";
        return os.str();
      });
  fleet::install_fleet_endpoints(server, &engine);
  net::HttpServer::Options opts;
  opts.bind_address = bind;
  opts.port = static_cast<std::uint16_t>(port);
  if (!server.start(opts)) {
    std::fprintf(stderr, "psa_monitord: cannot bind %s:%d\n", bind.c_str(),
                 port);
    return 1;
  }
  std::printf("psa_monitord: fleet of %zu chips, serving http://%s:%u "
              "(metrics healthz events timeseries fleet/healthz "
              "fleet/chips)\n",
              engine.size(), bind.c_str(), server.port());
  std::fflush(stdout);
  PSA_EVENT(kInfo, "monitord.started",
            {{"port", static_cast<std::size_t>(server.port())},
             {"fleet", engine.size()},
             {"traces", sched.traces},
             {"activate_at", sched.activate_at}});

  engine.enroll();
  g_phase.store(1, std::memory_order_relaxed);

  const char* blackbox_env = std::getenv("PSA_BLACKBOX_DIR");
  const std::string blackbox_dir = blackbox_env ? blackbox_env : "";

  for (std::size_t i = 0;
       (sched.traces == 0 || i < sched.traces) &&
       !g_stop.load(std::memory_order_relaxed);
       ++i) {
    g_phase.store(i >= sched.activate_at ? 2 : 1, std::memory_order_relaxed);
    std::size_t ran = 0;
    {
      // Root one trace per fleet tick so every session's flight records
      // (and any /metrics exemplars) carry the tick's trace id.
      PSA_TRACE_SPAN("fleet.tick", {{"tick", i}});
      ran = engine.run_ticks(1);
    }
    if (ran == 0) break;  // whole fleet quarantined
    if (!blackbox_dir.empty()) dump_fresh_blackboxes(engine, blackbox_dir);
    const fleet::FleetRollup r = engine.rollup();
    g_trace.store(r.ticks, std::memory_order_relaxed);
    g_alarms.store(r.alarms, std::memory_order_relaxed);
    interruptible_sleep_ms(sched.interval_ms);
  }
  if (!blackbox_dir.empty()) dump_fresh_blackboxes(engine, blackbox_dir);

  g_phase.store(3, std::memory_order_relaxed);
  const fleet::FleetRollup r = engine.rollup();
  PSA_EVENT(kInfo, "monitord.schedule_done",
            {{"traces", r.ticks},
             {"alarms", r.alarms},
             {"quarantined", r.quarantined}});
  if (sched.linger_sec > 0.0) interruptible_sleep_ms(sched.linger_sec * 1e3);

  server.stop();
  sampler.stop();
  obs::EventLog::global().close_sink();
  std::printf("psa_monitord: fleet %zu chip(s), %zu tick(s), %zu alarm(s), "
              "%zu quarantined, %llu request(s)\n",
              r.sessions, r.ticks, r.alarms, r.quarantined,
              static_cast<unsigned long long>(server.requests_served()));
  if (args.smoke) return r.alarms > 0 ? 0 : 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psa;

  bench::ArgSpec spec;
  spec.seed = true;
  spec.smoke = true;
  const bench::Args args = bench::parse_args(argc, argv, spec);

  Schedule sched;
  if (args.smoke) {
    sched.traces = 48;
    sched.activate_at = 16;
    sched.fault_at = 32;
    sched.fault_clear_at = 40;
    sched.interval_ms = 50.0;
    sched.sample_ms = 200.0;
    sched.linger_sec = 3.0;
  }
  int port = 0;
  std::string bind = "127.0.0.1";
  std::string events_out;
  if (!parse_extras(argc, argv, &sched, &port, &bind, &events_out)) return 2;
  if (sched.fault_clear_at == 0) sched.fault_clear_at = sched.fault_at + 8;

  // This *is* the observability daemon — telemetry on unconditionally.
  obs::set_enabled(true);
  if (!events_out.empty()) obs::EventLog::global().open_sink(events_out);

  // bench_util's obs-out handler may have installed dump-and-reraise
  // signal handlers; the daemon's graceful loop exit takes precedence
  // (a clean exit still runs the at-exit export).
  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);

  if (sched.fleet > 0) return run_fleet(args, sched, port, bind);

  // Own chip (not bench::TestBench) so the fault injector can arm
  // measurement faults on a mutable simulator mid-run.
  sim::ChipSimulator chip(sim::SimTiming{}, layout::Floorplan::aes_testchip());
  analysis::Pipeline pipeline(chip);
  const sim::Scenario quiet = sim::Scenario::baseline(args.seed);
  sim::Scenario active = sim::Scenario::with_trojan(sched.trojan, args.seed);

  obs::TimeSeriesConfig ts_cfg;
  ts_cfg.interval_s = sched.sample_ms / 1e3;
  obs::TimeSeriesSampler sampler(ts_cfg);
  sampler.start();

  net::HttpServer server;
  net::install_telemetry_endpoints(
      server, &obs::EventLog::global(), &sampler, [] {
        std::ostringstream os;
        os << "\"trace\":" << g_trace.load(std::memory_order_relaxed)
           << ",\"alarms\":" << g_alarms.load(std::memory_order_relaxed)
           << ",\"z\":" << g_last_z.load(std::memory_order_relaxed)
           << ",\"phase\":\""
           << phase_name(g_phase.load(std::memory_order_relaxed)) << "\"";
        return os.str();
      });
  net::HttpServer::Options opts;
  opts.bind_address = bind;
  opts.port = static_cast<std::uint16_t>(port);
  if (!server.start(opts)) {
    std::fprintf(stderr, "psa_monitord: cannot bind %s:%d\n", bind.c_str(),
                 port);
    return 1;
  }
  std::printf("psa_monitord: serving http://%s:%u (metrics healthz events "
              "timeseries)\n", bind.c_str(), server.port());
  std::fflush(stdout);
  PSA_EVENT(kInfo, "monitord.started",
            {{"port", static_cast<std::size_t>(server.port())},
             {"traces", sched.traces},
             {"activate_at", sched.activate_at}});

  // Enrollment happens live, before the schedule: scrapers see the phase
  // flip from "enrolling" to "quiet" on /healthz.
  pipeline.enroll(quiet);
  g_phase.store(1, std::memory_order_relaxed);
  PSA_EVENT(kInfo, "monitord.enrolled",
            {{"sensors", pipeline.config().enrollment_traces}});

  analysis::MonitorConfig mcfg;
  analysis::MonitorState state(mcfg);
  const std::size_t sentinel = mcfg.sentinel_sensor;
  fault::FaultPlan fault_plan;
  fault_plan.seed = args.seed;
  fault_plan.measurement.noise_scale = 1.6;
  fault_plan.measurement.temperature_offset_k = 6.0;
  const fault::FaultInjector injector(fault_plan);

  bool alarm_latched = false;
  for (std::size_t i = 0;
       (sched.traces == 0 || i < sched.traces) &&
       !g_stop.load(std::memory_order_relaxed);
       ++i) {
    const bool trojan_on = i >= sched.activate_at;
    g_phase.store(trojan_on ? 2 : 1, std::memory_order_relaxed);

    if (sched.fault_at != 0 && i == sched.fault_at) injector.arm(chip);
    if (sched.fault_at != 0 && i == sched.fault_clear_at) {
      fault::FaultInjector::disarm(chip);
    }

    sim::Scenario s = trojan_on ? active : quiet;
    s.seed = quiet.seed + 7919 * (i + 1);
    const dsp::Spectrum& avg = state.push(pipeline.single_sweep(sentinel, s));
    const analysis::DetectionResult d = pipeline.score_spectrum(sentinel, avg);
    const bool alarm = state.record(d.detected);
    if (alarm && !alarm_latched && trojan_on) {
      g_alarms.fetch_add(1, std::memory_order_relaxed);
      PSA_COUNTER_ADD("analysis.monitor.alarms", 1);
      PSA_EVENT(kAlarm, "monitor.alarm",
                {{"sensor", sentinel},
                 {"trace", i},
                 {"z", d.score},
                 {"peak_freq_hz", d.peak_freq_hz},
                 {"traces_after_activation", i - sched.activate_at + 1}});
    }
    alarm_latched = alarm;

    g_trace.store(i + 1, std::memory_order_relaxed);
    g_last_z.store(d.score, std::memory_order_relaxed);
    PSA_GAUGE_SET("monitord.trace_index", static_cast<double>(i + 1));
    PSA_GAUGE_SET("monitord.z_score", d.score);
    PSA_GAUGE_SET("monitord.alarm_active", alarm ? 1.0 : 0.0);

    interruptible_sleep_ms(sched.interval_ms);
  }

  g_phase.store(3, std::memory_order_relaxed);
  const std::size_t alarms = g_alarms.load(std::memory_order_relaxed);
  PSA_EVENT(kInfo, "monitord.schedule_done",
            {{"traces", g_trace.load(std::memory_order_relaxed)},
             {"alarms", alarms}});
  if (sched.linger_sec > 0.0) interruptible_sleep_ms(sched.linger_sec * 1e3);

  server.stop();
  sampler.stop();
  obs::EventLog::global().close_sink();
  std::printf("psa_monitord: %zu trace(s), %zu alarm(s), %llu request(s)\n",
              g_trace.load(std::memory_order_relaxed), alarms,
              static_cast<unsigned long long>(server.requests_served()));
  if (args.smoke) return alarms > 0 ? 0 : 1;
  return 0;
}
